//! The dataset registry: named sharded datasets plus the shared
//! per-shard fingerprint cache.
//!
//! `LOAD` installs a dataset under a name (replacing — and cache
//! invalidating — any previous holder of that name); `APPEND` adds a new
//! shard to an existing dataset, leaving every old shard's cached folds
//! valid. `QUERY` resolves the name, then asks [`Registry::fingerprint`]
//! for the signature artefact:
//!
//! * a **memo hit** returns the assembled `Arc<Fingerprint>` without
//!   touching data or locks beyond the dataset's own memo;
//! * a **miss** folds the dataset shard by shard under the request's
//!   budget, merging any shard whose fold is in the LRU cache — or, if
//!   a durable [`SignatureStore`] is configured, loading it from disk —
//!   instead of re-scanning it, and (only if the run completed) caches
//!   every shard fold, queues it for write-behind persistence, and
//!   memoises the assembled artefact.
//!
//! Concurrency: datasets sit behind an `RwLock` (read-mostly), the
//! cache behind a `Mutex` held only for lookups/inserts — never while
//! fingerprinting, so concurrent cold misses on the same key may
//! compute the same matrix twice. That costs duplicate work, not
//! correctness: fingerprinting is deterministic in the key, so whichever
//! insert lands last is bit-identical to the other.

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use skydiver_core::{Fingerprint, RunBudget, SkyDiver};
use skydiver_data::{io, Dataset, Preference, ShardedDataset};

use crate::cache::{FingerprintCache, FingerprintKey};
use crate::metrics::Metrics;
use crate::store::{content_hash, prefs_hash, SignatureStore, StoreKey, SweepReport};

/// Assembled fingerprints memoised per dataset *generation*: the memo
/// dies with its `LoadedDataset`, so `LOAD`/`APPEND` can never serve a
/// stale whole-dataset artefact.
const MEMO_CAP: usize = 16;

/// Finished selections memoised per dataset generation, keyed by the
/// full query identity. Entries are small (k ids + k scores), so the
/// cap is roomier than [`MEMO_CAP`].
const SELECTION_MEMO_CAP: usize = 256;

/// Everything deterministic in a finished selection: enough to render
/// a `QUERY`/`BATCH` reply without re-running the selection. Only
/// budget-free, undegraded runs over a *complete* fingerprint are
/// memoised, so a hit is bit-identical (timing fields aside) to the
/// recompute it replaces.
#[derive(Debug)]
pub struct SelectionMemo {
    /// Skyline cardinality (the `skyline` reply field).
    pub skyline_len: usize,
    /// Selected row ids, in pick order.
    pub selected: Vec<usize>,
    /// Dominance scores of the selected rows, index-aligned.
    pub gamma: Vec<u64>,
    /// The fingerprint's resident-byte figure (deterministic).
    pub memory_bytes: usize,
}

/// Memo key: the full identity of one selection —
/// `(prefs, t, seed, k, method-with-parameters)`.
pub(crate) type SelectionKey = (String, usize, u64, usize, String);

/// A dataset installed in the registry.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Registry name.
    pub name: String,
    /// The points, shard by shard.
    pub data: ShardedDataset,
    /// Content hash of this exact generation (dims, shard boundaries,
    /// every coordinate bit) — the durable store's dataset coordinate,
    /// so artefacts persisted for other data can never be served here.
    pub content_hash: u64,
    /// Assembled fingerprints for this generation of the data, keyed by
    /// `(prefs, t, seed)`. Bounded at [`MEMO_CAP`] (cleared when full —
    /// the per-shard LRU makes re-assembly cheap).
    memo: Mutex<HashMap<(String, usize, u64), Arc<Fingerprint>>>,
    /// Finished selections for this generation, keyed by the full query
    /// identity. Dies with the generation like `memo`, so `LOAD` and
    /// `APPEND` can never serve a stale answer.
    selections: Mutex<HashMap<SelectionKey, Arc<SelectionMemo>>>,
}

impl LoadedDataset {
    fn new(name: String, data: ShardedDataset) -> Self {
        let content_hash = content_hash(&data);
        LoadedDataset {
            name,
            data,
            content_hash,
            memo: Mutex::new(HashMap::new()),
            selections: Mutex::new(HashMap::new()),
        }
    }

    /// The dataset as one contiguous block — borrowed when there is a
    /// single shard, concatenated otherwise. The exact (greedy) query
    /// path uses this; everything signature-based works per shard.
    pub fn whole(&self) -> Cow<'_, Dataset> {
        if self.data.num_shards() == 1 {
            Cow::Borrowed(self.data.shard(0))
        } else {
            Cow::Owned(self.data.concat())
        }
    }

    pub(crate) fn memo_get(&self, key: &(String, usize, u64)) -> Option<Arc<Fingerprint>> {
        self.memo
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    pub(crate) fn memo_put(&self, key: (String, usize, u64), fp: Arc<Fingerprint>) {
        let mut memo = self.memo.lock().unwrap_or_else(|e| e.into_inner());
        if memo.len() >= MEMO_CAP {
            memo.clear();
        }
        memo.insert(key, fp);
    }

    pub(crate) fn selection_get(&self, key: &SelectionKey) -> Option<Arc<SelectionMemo>> {
        self.selections
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .cloned()
    }

    pub(crate) fn selection_put(&self, key: SelectionKey, memo: Arc<SelectionMemo>) {
        let mut memos = self.selections.lock().unwrap_or_else(|e| e.into_inner());
        if memos.len() >= SELECTION_MEMO_CAP {
            memos.clear();
        }
        memos.insert(key, memo);
    }
}

/// Parses a `min,max,...` preference spec against a dataset
/// dimensionality, defaulting to all-min. Returns the preferences plus
/// the canonical cache-key string.
pub fn parse_prefs(spec: Option<&str>, dims: usize) -> Result<(Vec<Preference>, String), String> {
    let prefs = match spec {
        None => Preference::all_min(dims),
        Some(s) => s
            .split(',')
            .map(|tok| match tok.trim() {
                "min" => Ok(Preference::Min),
                "max" => Ok(Preference::Max),
                other => Err(format!("bad preference {other:?} (min|max)")),
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if prefs.len() != dims {
        return Err(format!(
            "{} preferences for {dims}-dimensional data",
            prefs.len()
        ));
    }
    let key = prefs
        .iter()
        .map(|p| if *p == Preference::Min { "min" } else { "max" })
        .collect::<Vec<_>>()
        .join(",");
    Ok((prefs, key))
}

/// Named datasets + per-shard fingerprint cache + metrics. Shared (via
/// `Arc`) between every worker thread of a [`Server`](crate::Server).
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<LoadedDataset>>>,
    cache: Mutex<FingerprintCache>,
    metrics: Arc<Metrics>,
    store: Option<Arc<SignatureStore>>,
}

impl Registry {
    /// An empty registry whose fingerprint cache holds at most
    /// `cache_bytes` resident bytes, with no durable store.
    pub fn new(cache_bytes: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_store(cache_bytes, metrics, None)
    }

    /// An empty registry backed by an (optional) on-disk signature
    /// store: LRU misses fall through to the store, and complete runs
    /// are queued for write-behind persistence.
    pub fn with_store(
        cache_bytes: usize,
        metrics: Arc<Metrics>,
        store: Option<Arc<SignatureStore>>,
    ) -> Self {
        Registry {
            datasets: RwLock::new(HashMap::new()),
            cache: Mutex::new(FingerprintCache::new(cache_bytes)),
            metrics,
            store,
        }
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The durable signature store, if one is configured.
    pub fn store(&self) -> Option<&Arc<SignatureStore>> {
        self.store.as_ref()
    }

    /// `SNAPSHOT`: drains the write-behind queue so every completed
    /// fingerprint is durable. Returns total artefacts persisted since
    /// the store opened.
    pub fn store_snapshot(&self) -> Result<u64, String> {
        match &self.store {
            Some(s) => Ok(s.flush()),
            None => Err("no store configured (start the server with --store-dir)".into()),
        }
    }

    /// `RESTORE`: re-runs the recovery sweep, quarantining artefacts
    /// that no longer validate.
    pub fn store_restore(&self) -> Result<SweepReport, String> {
        match &self.store {
            Some(s) => s.sweep().map_err(|e| format!("store sweep failed: {e}")),
            None => Err("no store configured (start the server with --store-dir)".into()),
        }
    }

    /// Installs an in-memory dataset as a single shard (used by tests
    /// and the load generator; the wire path is [`Registry::load_path`]).
    /// Replaces any previous dataset of the same name and drops its
    /// cached shard folds — `LOAD` means "this name now denotes exactly
    /// this data", so nothing keyed to the old generation survives.
    pub fn insert_dataset(&self, name: impl Into<String>, data: Dataset) -> (usize, usize) {
        self.insert_sharded(name, ShardedDataset::from_dataset(data))
    }

    /// Installs an already-sharded dataset, with the same
    /// replace-and-invalidate semantics as [`Registry::insert_dataset`].
    /// Returns `(points, dims)`.
    pub fn insert_sharded(&self, name: impl Into<String>, data: ShardedDataset) -> (usize, usize) {
        let name = name.into();
        let (points, dims) = (data.len(), data.dims());
        let entry = Arc::new(LoadedDataset::new(name.clone(), data));
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .invalidate_dataset(&name);
        self.datasets
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name, entry);
        (points, dims)
    }

    /// Loads a dataset file (`.sky` binary snapshot or headerless CSV)
    /// and installs it. Returns `(points, dims)`.
    pub fn load_path(&self, name: &str, path: &str) -> Result<(usize, usize), String> {
        let data = read_points(path)?;
        Ok(self.insert_dataset(name, data))
    }

    /// Appends an in-memory block of points to dataset `name` as one new
    /// shard. Old shards are shared by `Arc` (no copy) and their cached
    /// folds stay valid — row ids are global and existing rows never
    /// move. Returns `(points, dims, shards, appended)` for the total
    /// dataset after the append.
    pub fn append_dataset(
        &self,
        name: &str,
        block: Dataset,
    ) -> Result<(usize, usize, usize, usize), String> {
        let old = self
            .dataset(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
        if block.dims() != old.data.dims() {
            return Err(format!(
                "appended block has {} dims, dataset {name:?} has {}",
                block.dims(),
                old.data.dims()
            ));
        }
        if block.is_empty() {
            return Err("appended block holds no points".to_string());
        }
        let appended = block.len();
        let mut grown = ShardedDataset::new(old.data.dims());
        for i in 0..old.data.num_shards() {
            grown.push_shard_arc(Arc::clone(old.data.shard_arc(i)));
        }
        grown.push_shard(block);
        let (points, dims, shards) = (grown.len(), grown.dims(), grown.num_shards());
        // A fresh LoadedDataset drops the old generation's assembled-
        // fingerprint memo; the per-shard LRU is deliberately *not*
        // invalidated — that reuse is the point of APPEND.
        let entry = Arc::new(LoadedDataset::new(name.to_string(), grown));
        self.datasets
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), entry);
        Ok((points, dims, shards, appended))
    }

    /// Reads a points file and appends it via
    /// [`Registry::append_dataset`].
    pub fn append_path(
        &self,
        name: &str,
        path: &str,
    ) -> Result<(usize, usize, usize, usize), String> {
        self.append_dataset(name, read_points(path)?)
    }

    /// Resolves a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<Arc<LoadedDataset>> {
        self.datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Names of the installed datasets (sorted, for reporting).
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// `(name, shard count)` for every installed dataset, sorted by
    /// name — the `STATS` payload's `dataset_shards` object.
    pub fn dataset_shards(&self) -> Vec<(String, usize)> {
        let mut out: Vec<(String, usize)> = self
            .datasets
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .values()
            .map(|d| (d.name.clone(), d.data.num_shards()))
            .collect();
        out.sort();
        out
    }

    /// The `STATS` payload: the metrics snapshot with a per-dataset
    /// shard-count object spliced in.
    pub fn stats_json(&self) -> String {
        let mut json = self.metrics.snapshot_json();
        let shards = self
            .dataset_shards()
            .into_iter()
            .map(|(name, n)| format!("\"{}\":{n}", crate::protocol::json_escape(&name)))
            .collect::<Vec<_>>()
            .join(",");
        // The pop must run in every profile — a side effect inside
        // `debug_assert!` would vanish in release and corrupt the payload.
        debug_assert!(json.ends_with('}'));
        json.pop();
        json.push_str(&format!(",\"dataset_shards\":{{{shards}}}}}"));
        json
    }

    /// The assembled fingerprint for `(name, prefs, t, seed)` — memoised
    /// if available, otherwise folded shard by shard under `budget`
    /// (reusing cached shard folds) and cached when complete. Returns
    /// the artefact, whether it was a memo hit, and the dominance tests
    /// charged (0 on a hit).
    pub fn fingerprint(
        &self,
        name: &str,
        prefs: &[Preference],
        prefs_key: &str,
        t: usize,
        seed: u64,
        budget: RunBudget,
    ) -> Result<(Arc<Fingerprint>, bool, u64), String> {
        let ds = self
            .dataset(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let memo_key = (prefs_key.to_string(), t, seed);
        if let Some(fp) = ds.memo_get(&memo_key) {
            self.metrics.bump(&self.metrics.cache_hits);
            return Ok((fp, true, 0));
        }
        self.metrics.bump(&self.metrics.cache_misses);
        let shard_key = |shard: usize| FingerprintKey {
            dataset: name.to_string(),
            shard,
            prefs: prefs_key.to_string(),
            t,
            seed,
        };
        let mut cached: Vec<_> = {
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            (0..ds.data.num_shards())
                .map(|i| cache.get(&shard_key(i)))
                .collect()
        };
        // LRU misses fall through to the durable store — disk reads
        // happen here, after the cache lock is dropped. A corrupt or
        // mis-keyed artefact is quarantined inside `load` and stays a
        // miss; the fold below recomputes it from the data.
        if let Some(store) = &self.store {
            let store_key = |shard: usize| StoreKey {
                dataset_hash: ds.content_hash,
                shard,
                prefs_hash: prefs_hash(prefs_key),
                t,
                seed,
            };
            for (i, slot) in cached.iter_mut().enumerate() {
                if slot.is_none() {
                    *slot = store.load(&store_key(i));
                }
            }
        }
        // `k` is irrelevant to phase 1; 2 is the smallest valid value.
        let diver = SkyDiver::new(2)
            .signature_size(t)
            .hash_seed(seed)
            .budget(budget);
        let run = diver
            .fingerprint_sharded_with(&ds.data, prefs, &cached)
            .map_err(|e| e.to_string())?;
        self.metrics
            .add(&self.metrics.dominance_tests, run.dominance_tests);
        self.metrics
            .add(&self.metrics.shards_reused, run.reused_shards as u64);
        let dominance_tests = run.dominance_tests;
        let fp = Arc::new(run.fingerprint);
        if fp.is_complete() {
            // Write-behind: queue every complete shard fold for the
            // store's worker thread (which skips keys already durable).
            // Partial folds never reach this branch — the store keeps
            // the cache's complete-only rule.
            if let Some(store) = &self.store {
                for (i, fold) in run.shards.iter().enumerate() {
                    store.enqueue_persist(
                        StoreKey {
                            dataset_hash: ds.content_hash,
                            shard: i,
                            prefs_hash: prefs_hash(prefs_key),
                            t,
                            seed,
                        },
                        Arc::clone(fold),
                    );
                }
            }
            let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
            for (i, fold) in run.shards.into_iter().enumerate() {
                cache.insert(shard_key(i), fold);
            }
            self.metrics
                .bytes_resident
                .store(cache.bytes() as u64, std::sync::atomic::Ordering::Relaxed);
            self.metrics
                .cache_evictions
                .store(cache.evictions(), std::sync::atomic::Ordering::Relaxed);
            drop(cache);
            ds.memo_put(memo_key, Arc::clone(&fp));
        }
        Ok((fp, false, dominance_tests))
    }

    /// Cache occupancy snapshot: `(entries, resident bytes, ceiling)` of
    /// the per-shard LRU (assembled-fingerprint memos are not counted —
    /// they share the shard folds' slot arrays only transitively and are
    /// bounded per dataset).
    pub fn cache_usage(&self) -> (usize, usize, usize) {
        let cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        (cache.len(), cache.bytes(), cache.ceiling())
    }
}

/// Reads a `.sky` binary snapshot or headerless CSV, refusing empty
/// files.
pub(crate) fn read_points(path: &str) -> Result<Dataset, String> {
    let data = if path.ends_with(".sky") {
        io::read_binary(path).map_err(|e| format!("cannot read {path}: {e}"))?
    } else {
        io::read_csv(path).map_err(|e| format!("cannot read {path}: {e}"))?
    };
    if data.is_empty() {
        return Err(format!("{path} holds no points"));
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::generators::anticorrelated;

    /// A budget that never trips but is not "unlimited", so the
    /// dominance-test counter actually runs (unlimited contexts skip it).
    fn counted() -> RunBudget {
        RunBudget::none().with_max_dominance_tests(u64::MAX)
    }

    #[test]
    fn prefs_parse_and_canonicalise() {
        let (p, key) = parse_prefs(None, 3).unwrap();
        assert_eq!(p, Preference::all_min(3));
        assert_eq!(key, "min,min,min");
        let (p, key) = parse_prefs(Some("min, max ,min"), 3).unwrap();
        assert_eq!(p, vec![Preference::Min, Preference::Max, Preference::Min]);
        assert_eq!(key, "min,max,min");
        assert!(parse_prefs(Some("min,up"), 2).is_err());
        assert!(parse_prefs(Some("min"), 2).is_err());
    }

    #[test]
    fn stats_json_braces_balance() {
        let reg = Registry::new(1 << 24, Arc::new(Metrics::new()));
        reg.insert_dataset("d", anticorrelated(200, 3, 16));
        let json = reg.stats_json();
        let mut depth = 0i32;
        for c in json.chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            assert!(depth > 0 || c == '}', "brace closed too early in {json}");
        }
        assert_eq!(depth, 0, "unbalanced braces in {json}");
        assert!(json.contains("\"dataset_shards\":{\"d\":1}"));
    }

    #[test]
    fn fingerprint_miss_then_hit_shares_the_artefact() {
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::new(1 << 24, Arc::clone(&metrics));
        reg.insert_dataset("ant", anticorrelated(2000, 3, 17));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let (cold, hit, spent) = reg
            .fingerprint("ant", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(!hit);
        assert!(spent > 0, "a cold run charges dominance tests");
        let (warm, hit, spent) = reg
            .fingerprint("ant", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(hit);
        assert_eq!(spent, 0, "a memo hit touches no data");
        assert!(Arc::ptr_eq(&cold, &warm), "hit returns the same allocation");
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Relaxed), 1);
        assert!(metrics.bytes_resident.load(Relaxed) > 0);
        // A different seed is a different cache coordinate.
        let (_, hit, _) = reg
            .fingerprint("ant", &prefs, &key, 32, 8, RunBudget::none())
            .unwrap();
        assert!(!hit);
        assert_eq!(reg.cache_usage().0, 2);
    }

    #[test]
    fn curtailed_fingerprints_are_not_cached() {
        let reg = Registry::new(1 << 24, Arc::new(Metrics::new()));
        reg.insert_dataset("ant", anticorrelated(2000, 3, 18));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let tiny = RunBudget::none().with_max_dominance_tests(10);
        let (fp, hit, _) = reg.fingerprint("ant", &prefs, &key, 32, 7, tiny).unwrap();
        assert!(!hit);
        assert!(!fp.is_complete());
        assert_eq!(
            reg.cache_usage().0,
            0,
            "partial artefact must not be cached"
        );
        // The next unbudgeted query recomputes from scratch (a miss).
        let (fp, hit, _) = reg
            .fingerprint("ant", &prefs, &key, 32, 7, RunBudget::none())
            .unwrap();
        assert!(!hit);
        assert!(fp.is_complete());
        assert_eq!(reg.cache_usage().0, 1);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let reg = Registry::new(1 << 20, Arc::new(Metrics::new()));
        let (prefs, key) = parse_prefs(None, 2).unwrap();
        let err = reg
            .fingerprint("ghost", &prefs, &key, 8, 0, RunBudget::none())
            .unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }

    #[test]
    fn load_replaces_and_invalidates() {
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::new(1 << 24, Arc::clone(&metrics));
        reg.insert_dataset("d", anticorrelated(1000, 3, 19));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let (first, hit, _) = reg
            .fingerprint("d", &prefs, &key, 32, 7, RunBudget::none())
            .unwrap();
        assert!(!hit);
        assert_eq!(reg.cache_usage().0, 1);
        // Re-LOAD under the same name: different data, same coordinates.
        reg.insert_dataset("d", anticorrelated(1000, 3, 77));
        assert_eq!(
            reg.cache_usage().0,
            0,
            "LOAD drops the old generation's folds"
        );
        let (second, hit, _) = reg
            .fingerprint("d", &prefs, &key, 32, 7, RunBudget::none())
            .unwrap();
        assert!(!hit, "the memo died with the replaced dataset");
        assert!(
            first.output.scores != second.output.scores || first.skyline != second.skyline,
            "the artefact reflects the new data"
        );
    }

    #[test]
    fn append_reuses_old_shard_folds() {
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::new(1 << 24, Arc::clone(&metrics));
        reg.insert_dataset("d", anticorrelated(2000, 3, 20));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let (_, _, cold) = reg
            .fingerprint("d", &prefs, &key, 32, 7, counted())
            .unwrap();
        // The appended block changes the skyline, so the old shard's fold
        // is extended (new columns only), not fully reused.
        let (points, dims, shards, appended) =
            reg.append_dataset("d", anticorrelated(100, 3, 21)).unwrap();
        assert_eq!((points, dims, shards, appended), (2100, 3, 2, 100));
        let (fp, hit, warm) = reg
            .fingerprint("d", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(!hit, "a fresh generation cannot be memo-served");
        assert!(fp.is_complete());
        assert!(
            warm < cold,
            "append fold ({warm} tests) must undercut the cold run ({cold})"
        );
        // Equivalence: the merged artefact matches a from-scratch run.
        let scratch = Registry::new(1 << 24, Arc::new(Metrics::new()));
        let mut sd = ShardedDataset::new(3);
        sd.push_shard(anticorrelated(2000, 3, 20));
        sd.push_shard(anticorrelated(100, 3, 21));
        scratch.insert_sharded("d", sd);
        let (truth, _, _) = scratch
            .fingerprint("d", &prefs, &key, 32, 7, RunBudget::none())
            .unwrap();
        assert_eq!(fp.output.matrix, truth.output.matrix);
        assert_eq!(fp.output.scores, truth.output.scores);
        assert_eq!(fp.skyline, truth.skyline);
    }

    #[test]
    fn append_of_dominated_points_reuses_the_whole_old_shard() {
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::new(1 << 24, Arc::clone(&metrics));
        reg.insert_dataset("d", anticorrelated(2000, 3, 22));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        reg.fingerprint("d", &prefs, &key, 32, 7, counted())
            .unwrap();
        // Every appended point is dominated by the existing data (the
        // generator emits coordinates well below 10), so the skyline —
        // and with it the old shard's fold — is unchanged.
        let sunk = Dataset::from_rows(3, &vec![[10.0, 10.0, 10.0]; 50]);
        reg.append_dataset("d", sunk).unwrap();
        use std::sync::atomic::Ordering::Relaxed;
        let reused_before = metrics.shards_reused.load(Relaxed);
        let (fp, hit, warm) = reg
            .fingerprint("d", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(!hit);
        assert!(fp.is_complete());
        assert!(
            metrics.shards_reused.load(Relaxed) > reused_before,
            "the unchanged old shard must be served from the cache"
        );
        let m = fp.skyline.len() as u64;
        assert_eq!(warm, 50 * m, "only the appended rows are scanned");
    }

    #[test]
    fn append_validates_dims_and_name() {
        let reg = Registry::new(1 << 20, Arc::new(Metrics::new()));
        assert!(reg
            .append_dataset("ghost", anticorrelated(10, 3, 0))
            .is_err());
        reg.insert_dataset("d", anticorrelated(10, 3, 0));
        let err = reg
            .append_dataset("d", anticorrelated(10, 2, 0))
            .unwrap_err();
        assert!(err.contains("dims"), "{err}");
    }

    fn tmp_store(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-reg-store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    #[test]
    fn store_round_trip_makes_restarts_warm() {
        use std::sync::atomic::Ordering::Relaxed;
        let dir = tmp_store("warm");
        let metrics = Arc::new(Metrics::new());
        let (store, _) = SignatureStore::open(&dir, Arc::clone(&metrics), &[]).unwrap();
        let reg = Registry::with_store(1 << 24, Arc::clone(&metrics), Some(Arc::new(store)));
        reg.insert_dataset("ant", anticorrelated(2000, 3, 23));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let (cold, _, cold_tests) = reg
            .fingerprint("ant", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(cold_tests > 0);
        assert_eq!(reg.store_snapshot().unwrap(), 1, "one shard fold flushed");
        drop(reg);

        // "Restart": fresh metrics + registry, same store dir. The
        // dataset is re-loaded under a *different name* — the store is
        // keyed by content, so the artefact still matches.
        let m2 = Arc::new(Metrics::new());
        let (store2, report) = SignatureStore::open(&dir, Arc::clone(&m2), &[]).unwrap();
        assert_eq!(report.valid, 1, "{report:?}");
        let reg2 = Registry::with_store(1 << 24, Arc::clone(&m2), Some(Arc::new(store2)));
        reg2.insert_dataset("renamed", anticorrelated(2000, 3, 23));
        let (warm, hit, warm_tests) = reg2
            .fingerprint("renamed", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(!hit, "first post-restart query cannot be memo-served");
        assert_eq!(warm_tests, 0, "every shard must come from the store");
        assert!(warm.is_complete());
        assert_eq!(
            warm.output.matrix, cold.output.matrix,
            "bit-identical restore"
        );
        assert_eq!(warm.output.scores, cold.output.scores);
        assert_eq!(warm.skyline, cold.skyline);
        assert_eq!(m2.store_hits.load(Relaxed), 1);
        // Different data under the same name is a different content
        // hash — the store must *not* serve the old artefact.
        reg2.insert_dataset("renamed", anticorrelated(2000, 3, 777));
        let (_, _, other_tests) = reg2
            .fingerprint("renamed", &prefs, &key, 32, 7, counted())
            .unwrap();
        assert!(other_tests > 0, "changed content must recompute");
        drop(reg2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_restore_without_store_is_an_error() {
        let reg = Registry::new(1 << 20, Arc::new(Metrics::new()));
        assert!(reg.store_snapshot().unwrap_err().contains("no store"));
        assert!(reg.store_restore().unwrap_err().contains("no store"));
    }

    /// PR 5 switched every serve-layer lock acquisition to
    /// `unwrap_or_else(|e| e.into_inner())`. Poison each guarded lock
    /// from a thread that panics mid-hold and assert the registry keeps
    /// answering on every path.
    #[test]
    fn registry_survives_poisoned_locks() {
        let reg = Arc::new(Registry::new(1 << 24, Arc::new(Metrics::new())));
        reg.insert_dataset("d", anticorrelated(500, 3, 29));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        reg.fingerprint("d", &prefs, &key, 16, 3, counted())
            .unwrap();

        let r = Arc::clone(&reg);
        let _ = std::thread::spawn(move || {
            let _guard = r.datasets.write().unwrap();
            panic!("poison the datasets lock");
        })
        .join();
        let r = Arc::clone(&reg);
        let _ = std::thread::spawn(move || {
            let _guard = r.cache.lock().unwrap();
            panic!("poison the cache lock");
        })
        .join();
        let ds = reg.dataset("d").expect("read path recovers from poison");
        let _ = std::thread::spawn(move || {
            let _guard = ds.memo.lock().unwrap();
            panic!("poison the memo lock");
        })
        .join();

        // Reads, the memoised fingerprint path, and both write paths
        // still work on the poisoned locks.
        assert_eq!(reg.dataset_names(), vec!["d"]);
        let (fp, hit, _) = reg
            .fingerprint("d", &prefs, &key, 16, 3, counted())
            .unwrap();
        assert!(hit, "memo still serves after poison");
        assert!(fp.is_complete());
        reg.insert_dataset("e", anticorrelated(100, 3, 30));
        reg.append_dataset("e", anticorrelated(50, 3, 31)).unwrap();
        assert_eq!(reg.dataset_names(), vec!["d", "e"]);
        assert!(reg.cache_usage().0 >= 1);
        assert!(reg.stats_json().contains("\"dataset_shards\""));
    }
}
