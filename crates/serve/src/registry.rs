//! The dataset registry: named datasets plus the shared fingerprint
//! cache.
//!
//! `LOAD` installs a dataset under a name; `QUERY` resolves the name,
//! then asks [`Registry::fingerprint`] for the signature artefact — a
//! cache hit returns the shared `Arc` without touching the data, a miss
//! runs phase 1 under the request's budget and (only if it completed)
//! caches the result for every later query over the same
//! `(dataset, prefs, t, seed)` coordinate.
//!
//! Concurrency: datasets sit behind an `RwLock` (read-mostly), the
//! cache behind a `Mutex` held only for lookups/inserts — never while
//! fingerprinting, so concurrent cold misses on the same key may
//! compute the same matrix twice. That costs duplicate work, not
//! correctness: fingerprinting is deterministic in the key, so whichever
//! insert lands last is bit-identical to the other.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

use skydiver_core::{Fingerprint, RunBudget, SkyDiver};
use skydiver_data::{io, Dataset, Preference};

use crate::cache::{FingerprintCache, FingerprintKey};
use crate::metrics::Metrics;

/// A dataset installed in the registry.
#[derive(Debug)]
pub struct LoadedDataset {
    /// Registry name.
    pub name: String,
    /// The points.
    pub data: Dataset,
}

/// Parses a `min,max,...` preference spec against a dataset
/// dimensionality, defaulting to all-min. Returns the preferences plus
/// the canonical cache-key string.
pub fn parse_prefs(spec: Option<&str>, dims: usize) -> Result<(Vec<Preference>, String), String> {
    let prefs = match spec {
        None => Preference::all_min(dims),
        Some(s) => s
            .split(',')
            .map(|tok| match tok.trim() {
                "min" => Ok(Preference::Min),
                "max" => Ok(Preference::Max),
                other => Err(format!("bad preference {other:?} (min|max)")),
            })
            .collect::<Result<Vec<_>, _>>()?,
    };
    if prefs.len() != dims {
        return Err(format!("{} preferences for {dims}-dimensional data", prefs.len()));
    }
    let key = prefs
        .iter()
        .map(|p| if *p == Preference::Min { "min" } else { "max" })
        .collect::<Vec<_>>()
        .join(",");
    Ok((prefs, key))
}

/// Named datasets + fingerprint cache + metrics. Shared (via `Arc`)
/// between every worker thread of a [`Server`](crate::Server).
pub struct Registry {
    datasets: RwLock<HashMap<String, Arc<LoadedDataset>>>,
    cache: Mutex<FingerprintCache>,
    metrics: Arc<Metrics>,
}

impl Registry {
    /// An empty registry whose fingerprint cache holds at most
    /// `cache_bytes` resident bytes.
    pub fn new(cache_bytes: usize, metrics: Arc<Metrics>) -> Self {
        Registry {
            datasets: RwLock::new(HashMap::new()),
            cache: Mutex::new(FingerprintCache::new(cache_bytes)),
            metrics,
        }
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Installs an in-memory dataset (used by tests and the load
    /// generator; the wire path is [`Registry::load_path`]). Replaces
    /// any previous dataset of the same name — cached fingerprints keyed
    /// to the old data are *not* invalidated, so reuse of a name with
    /// different data is on the caller.
    pub fn insert_dataset(&self, name: impl Into<String>, data: Dataset) -> (usize, usize) {
        let name = name.into();
        let (points, dims) = (data.len(), data.dims());
        let entry = Arc::new(LoadedDataset { name: name.clone(), data });
        self.datasets.write().expect("registry lock").insert(name, entry);
        (points, dims)
    }

    /// Loads a dataset file (`.sky` binary snapshot or headerless CSV)
    /// and installs it. Returns `(points, dims)`.
    pub fn load_path(&self, name: &str, path: &str) -> Result<(usize, usize), String> {
        let data = if path.ends_with(".sky") {
            io::read_binary(path).map_err(|e| format!("cannot read {path}: {e}"))?
        } else {
            io::read_csv(path).map_err(|e| format!("cannot read {path}: {e}"))?
        };
        if data.is_empty() {
            return Err(format!("{path} holds no points"));
        }
        Ok(self.insert_dataset(name, data))
    }

    /// Resolves a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<Arc<LoadedDataset>> {
        self.datasets.read().expect("registry lock").get(name).cloned()
    }

    /// Names of the installed datasets (sorted, for reporting).
    pub fn dataset_names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.datasets.read().expect("registry lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// The fingerprint for `(name, prefs, t, seed)` — cached if
    /// available, otherwise computed under `budget` and cached when
    /// complete. Returns the artefact plus whether it was a cache hit.
    pub fn fingerprint(
        &self,
        name: &str,
        prefs: &[Preference],
        prefs_key: &str,
        t: usize,
        seed: u64,
        budget: RunBudget,
    ) -> Result<(Arc<Fingerprint>, bool), String> {
        let ds = self.dataset(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let key = FingerprintKey {
            dataset: name.to_string(),
            prefs: prefs_key.to_string(),
            t,
            seed,
        };
        if let Some(fp) = self.cache.lock().expect("cache lock").get(&key) {
            self.metrics.bump(&self.metrics.cache_hits);
            return Ok((fp, true));
        }
        self.metrics.bump(&self.metrics.cache_misses);
        // `k` is irrelevant to phase 1; 2 is the smallest valid value.
        let diver = SkyDiver::new(2).signature_size(t).hash_seed(seed).budget(budget);
        let fp = Arc::new(diver.fingerprint(&ds.data, prefs).map_err(|e| e.to_string())?);
        if fp.is_complete() {
            let mut cache = self.cache.lock().expect("cache lock");
            cache.insert(key, Arc::clone(&fp));
            self.metrics
                .bytes_resident
                .store(cache.bytes() as u64, std::sync::atomic::Ordering::Relaxed);
            self.metrics
                .cache_evictions
                .store(cache.evictions(), std::sync::atomic::Ordering::Relaxed);
        }
        Ok((fp, false))
    }

    /// Cache occupancy snapshot: `(entries, resident bytes, ceiling)`.
    pub fn cache_usage(&self) -> (usize, usize, usize) {
        let cache = self.cache.lock().expect("cache lock");
        (cache.len(), cache.bytes(), cache.ceiling())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::generators::anticorrelated;

    #[test]
    fn prefs_parse_and_canonicalise() {
        let (p, key) = parse_prefs(None, 3).unwrap();
        assert_eq!(p, Preference::all_min(3));
        assert_eq!(key, "min,min,min");
        let (p, key) = parse_prefs(Some("min, max ,min"), 3).unwrap();
        assert_eq!(p, vec![Preference::Min, Preference::Max, Preference::Min]);
        assert_eq!(key, "min,max,min");
        assert!(parse_prefs(Some("min,up"), 2).is_err());
        assert!(parse_prefs(Some("min"), 2).is_err());
    }

    #[test]
    fn fingerprint_miss_then_hit_shares_the_artefact() {
        let metrics = Arc::new(Metrics::new());
        let reg = Registry::new(1 << 24, Arc::clone(&metrics));
        reg.insert_dataset("ant", anticorrelated(2000, 3, 17));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let (cold, hit) =
            reg.fingerprint("ant", &prefs, &key, 32, 7, RunBudget::none()).unwrap();
        assert!(!hit);
        let (warm, hit) =
            reg.fingerprint("ant", &prefs, &key, 32, 7, RunBudget::none()).unwrap();
        assert!(hit);
        assert!(Arc::ptr_eq(&cold, &warm), "hit returns the same allocation");
        use std::sync::atomic::Ordering::Relaxed;
        assert_eq!(metrics.cache_hits.load(Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Relaxed), 1);
        assert!(metrics.bytes_resident.load(Relaxed) > 0);
        // A different seed is a different cache coordinate.
        let (_, hit) = reg.fingerprint("ant", &prefs, &key, 32, 8, RunBudget::none()).unwrap();
        assert!(!hit);
        assert_eq!(reg.cache_usage().0, 2);
    }

    #[test]
    fn curtailed_fingerprints_are_not_cached() {
        let reg = Registry::new(1 << 24, Arc::new(Metrics::new()));
        reg.insert_dataset("ant", anticorrelated(2000, 3, 18));
        let (prefs, key) = parse_prefs(None, 3).unwrap();
        let tiny = RunBudget::none().with_max_dominance_tests(10);
        let (fp, hit) = reg.fingerprint("ant", &prefs, &key, 32, 7, tiny).unwrap();
        assert!(!hit);
        assert!(!fp.is_complete());
        assert_eq!(reg.cache_usage().0, 0, "partial artefact must not be cached");
        // The next unbudgeted query recomputes from scratch (a miss).
        let (fp, hit) =
            reg.fingerprint("ant", &prefs, &key, 32, 7, RunBudget::none()).unwrap();
        assert!(!hit);
        assert!(fp.is_complete());
        assert_eq!(reg.cache_usage().0, 1);
    }

    #[test]
    fn unknown_dataset_is_an_error() {
        let reg = Registry::new(1 << 20, Arc::new(Metrics::new()));
        let (prefs, key) = parse_prefs(None, 2).unwrap();
        let err = reg.fingerprint("ghost", &prefs, &key, 8, 0, RunBudget::none()).unwrap_err();
        assert!(err.contains("ghost"), "{err}");
    }
}
