//! Hand-rolled readiness shim: `epoll` on Linux, `poll(2)` everywhere
//! else — the std-only substrate under the nonblocking server core.
//!
//! The build is offline (no mio/tokio), so the event loop talks to the
//! kernel directly through the C library entry points std already
//! links. Two backends implement the same level-triggered API:
//!
//! * **epoll** (Linux): one `epoll_create1` instance per [`Poller`];
//!   interest changes are `epoll_ctl` calls, waits are `epoll_wait`.
//!   O(ready) per wake-up, the production backend.
//! * **poll** (portable fallback): the registration table is kept in
//!   user space and rebuilt into a `pollfd` array per wait. O(fds) per
//!   wake-up, but works on every Unix and exercises the exact same
//!   caller state machines — CI runs the serve suite against it via
//!   `SKYDIVER_POLLER=poll`.
//!
//! Both backends are level-triggered: a readable fd stays readable
//! until drained, so a caller that processes only part of a buffer is
//! woken again instead of hanging. Tokens are caller-chosen `u64`s
//! (the server uses slab indices; the cluster fan-out uses leg
//! indices) and come back verbatim in each [`Event`].
//!
//! Nothing here owns an fd: callers keep their `TcpStream`s /
//! `TcpListener`s and must [`Poller::deregister`] before closing
//! (the epoll backend would otherwise keep a stale interest entry;
//! the poll backend would busy-wake on `POLLNVAL`).

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub read: bool,
    /// Wake when the fd is writable.
    pub write: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        read: true,
        write: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        read: false,
        write: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        read: true,
        write: true,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or EOF to observe).
    pub readable: bool,
    /// The fd can accept bytes.
    pub writable: bool,
    /// Error or hang-up: the connection is dead either way, and a
    /// read will surface the exact condition.
    pub closed: bool,
}

/// A readiness selector over registered fds.
pub struct Poller {
    backend: Backend,
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollset::PollSet),
}

impl Poller {
    /// The platform's best backend: epoll on Linux, `poll(2)` on other
    /// Unixes. `SKYDIVER_POLLER=poll` forces the portable backend (the
    /// serve test suite runs under both).
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            if std::env::var_os("SKYDIVER_POLLER").is_some_and(|v| v == "poll") {
                return Poller::portable();
            }
            Ok(Poller {
                backend: Backend::Epoll(epoll::Epoll::new()?),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poller::portable()
        }
    }

    /// The portable `poll(2)` backend, on any platform.
    pub fn portable() -> io::Result<Poller> {
        Ok(Poller {
            backend: Backend::Poll(pollset::PollSet::new()),
        })
    }

    /// Which backend this poller runs on (`"epoll"` / `"poll"`).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` with `interest`; `token` comes back in
    /// every event for it. One registration per fd.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Backend::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Replaces an existing registration's interest (and token).
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Backend::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Must be called before the fd is closed.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ),
            Backend::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered fd is ready or `timeout`
    /// expires (`None` blocks indefinitely). Ready events are appended
    /// to `out` (which is cleared first); returns how many.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        out.clear();
        let timeout_ms: i32 = match timeout {
            // poll/epoll take int milliseconds; round up so a 100 µs
            // deadline is not treated as "return immediately".
            Some(d) => d
                .as_millis()
                .max(u128::from(!d.is_zero()))
                .min(i32::MAX as u128) as i32,
            None => -1,
        };
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(out, timeout_ms),
            Backend::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

/// The C library entry points both backends stand on. std already
/// links libc, so declaring the prototypes is enough — no crate, no
/// build script.
mod ffi {
    use std::os::raw::{c_int, c_short, c_uint, c_ulong};

    /// Kernel/libc `struct epoll_event`. On x86-64 the ABI packs it
    /// (no padding between `events` and `data`); other architectures
    /// use natural alignment — mirror glibc's `__EPOLL_PACKED`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// `struct pollfd` from `<poll.h>` — identical on every Unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: c_short,
        pub revents: c_short,
    }

    extern "C" {
        // SAFETY: prototypes transcribed from <sys/epoll.h> / <poll.h>;
        // the C library std links provides these exact symbols. All are
        // thin syscall wrappers with no callback into Rust.
        #[cfg(target_os = "linux")]
        pub fn epoll_create1(flags: c_int) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        #[cfg(target_os = "linux")]
        pub fn close(fd: c_int) -> c_int;
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub const EPOLLIN: c_uint = 0x001;
    pub const EPOLLOUT: c_uint = 0x004;
    pub const EPOLLERR: c_uint = 0x008;
    pub const EPOLLHUP: c_uint = 0x010;
    pub const EPOLLRDHUP: c_uint = 0x2000;

    pub const POLLIN: c_short = 0x001;
    pub const POLLOUT: c_short = 0x004;
    pub const POLLERR: c_short = 0x008;
    pub const POLLHUP: c_short = 0x010;
    pub const POLLNVAL: c_short = 0x020;
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::ffi;
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    /// Per-wait event batch; more ready fds just surface on the next
    /// wait (level-triggered, nothing is lost).
    const MAX_EVENTS: usize = 256;

    pub struct Epoll {
        epfd: RawFd,
        buf: Vec<ffi::EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flags int and returns a new
            // fd or -1; no pointers cross the boundary.
            let epfd = unsafe { ffi::epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![ffi::EpollEvent { events: 0, data: 0 }; MAX_EVENTS],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = ffi::EPOLLRDHUP;
            if interest.read {
                m |= ffi::EPOLLIN;
            }
            if interest.write {
                m |= ffi::EPOLLOUT;
            }
            m
        }

        pub fn ctl(&mut self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = ffi::EpollEvent {
                events: Self::mask(interest),
                data: token,
            };
            // SAFETY: `ev` is a live, properly laid out EpollEvent for
            // the duration of the call; the kernel copies it and keeps
            // no reference. For EPOLL_CTL_DEL the pointer is ignored
            // (we still pass a valid one for pre-2.6.9 portability).
            let rc = unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            // SAFETY: `buf` is MAX_EVENTS valid EpollEvents and the
            // kernel writes at most `maxevents` of them; `buf` outlives
            // the call. EINTR is retried by the caller's outer loop
            // semantics — we surface it as zero events.
            let n = unsafe {
                ffi::epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    MAX_EVENTS as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for ev in &self.buf[..n as usize] {
                // lint: allow(R2) -- O(ready fds ≤ MAX_EVENTS) copy-out
                // after the kernel wait; no I/O, no unbounded work
                // Copy out of the (possibly packed) struct before use.
                let bits = ev.events;
                let token = ev.data;
                out.push(Event {
                    token,
                    readable: bits & (ffi::EPOLLIN | ffi::EPOLLRDHUP) != 0,
                    writable: bits & ffi::EPOLLOUT != 0,
                    closed: bits & (ffi::EPOLLERR | ffi::EPOLLHUP) != 0,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd came from epoll_create1 and is closed
            // exactly once, here.
            unsafe { ffi::close(self.epfd) };
        }
    }
}

mod pollset {
    use super::ffi;
    use super::{Event, Interest};
    use std::io;
    use std::os::fd::RawFd;

    /// User-space registration table rebuilt into a `pollfd` array per
    /// wait — O(fds) per wake-up, but dependency-free and portable.
    pub struct PollSet {
        regs: Vec<(RawFd, u64, Interest)>,
        fds: Vec<ffi::PollFd>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                regs: Vec::new(),
                fds: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            if self.regs.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.regs.push((fd, token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            for r in &mut self.regs {
                // lint: allow(R2) -- bounded linear scan over registered fds,
                // pure memory writes; returns as soon as the entry is found.
                if r.0 == fd {
                    *r = (fd, token, interest);
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|&(f, _, _)| f != fd);
            if self.regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            self.fds.clear();
            for &(fd, _, interest) in &self.regs {
                // lint: allow(R2) -- O(registered fds) table rebuild,
                // pure memory writes; the wait below is the blocking point
                let mut events = 0i16;
                if interest.read {
                    events |= ffi::POLLIN;
                }
                if interest.write {
                    events |= ffi::POLLOUT;
                }
                self.fds.push(ffi::PollFd {
                    fd,
                    events,
                    revents: 0,
                });
            }
            // SAFETY: `fds` holds exactly `len` valid pollfd entries;
            // the kernel writes only their `revents` fields and keeps
            // no reference past the call.
            let n = unsafe {
                ffi::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            for (pfd, &(_, token, _)) in self.fds.iter().zip(&self.regs) {
                // lint: allow(R2) -- O(registered fds) readiness copy-out
                // after the kernel wait; no I/O, no unbounded work
                let r = pfd.revents;
                if r == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: r & (ffi::POLLIN | ffi::POLLHUP) != 0,
                    writable: r & ffi::POLLOUT != 0,
                    closed: r & (ffi::POLLERR | ffi::POLLHUP | ffi::POLLNVAL) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::portable().expect("poll backend")];
        if cfg!(target_os = "linux") {
            v.push(Poller::new().expect("native backend"));
        }
        v
    }

    #[test]
    fn readable_after_peer_writes_on_both_backends() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let mut peer = TcpStream::connect(addr).expect("connect");
            let (sock, _) = listener.accept().expect("accept");
            sock.set_nonblocking(true).expect("nonblocking");
            poller
                .register(sock.as_raw_fd(), 7, Interest::READ)
                .expect("register");

            let mut events = Vec::new();
            // Nothing to read yet: a short wait times out empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(
                events.is_empty(),
                "{}: spurious event {events:?}",
                poller.backend_name()
            );

            peer.write_all(b"ping").expect("peer write");
            poller
                .wait(&mut events, Some(Duration::from_millis(2_000)))
                .expect("wait");
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: still readable until drained.
            poller
                .wait(&mut events, Some(Duration::from_millis(2_000)))
                .expect("re-wait");
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: level-triggered readiness must persist",
                poller.backend_name()
            );
            let mut sock = sock;
            let mut buf = [0u8; 16];
            let n = sock.read(&mut buf).expect("drain");
            assert_eq!(&buf[..n], b"ping");
            poller.deregister(sock.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn write_interest_and_modify() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
            let addr = listener.local_addr().expect("addr");
            let peer = TcpStream::connect(addr).expect("connect");
            let (sock, _) = listener.accept().expect("accept");
            sock.set_nonblocking(true).expect("nonblocking");
            // A fresh socket with an empty send buffer is writable.
            poller
                .register(sock.as_raw_fd(), 1, Interest::WRITE)
                .expect("register");
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(2_000)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 1 && e.writable),
                "{}: fresh socket must be writable",
                poller.backend_name()
            );
            // Downgrade to read interest: no events until the peer speaks.
            poller
                .modify(sock.as_raw_fd(), 2, Interest::READ)
                .expect("modify");
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .expect("wait");
            assert!(events.is_empty(), "{}", poller.backend_name());
            drop(peer); // EOF counts as readable
            poller
                .wait(&mut events, Some(Duration::from_millis(2_000)))
                .expect("wait");
            assert!(
                events.iter().any(|e| e.token == 2 && e.readable),
                "{}: EOF must surface as readable",
                poller.backend_name()
            );
            poller.deregister(sock.as_raw_fd()).expect("deregister");
        }
    }

    #[test]
    fn double_register_and_missing_deregister_error_on_pollset() {
        let mut p = Poller::portable().expect("poll backend");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let fd = listener.as_raw_fd();
        p.register(fd, 0, Interest::READ).expect("register");
        assert!(p.register(fd, 1, Interest::READ).is_err());
        p.deregister(fd).expect("deregister");
        assert!(p.deregister(fd).is_err());
        assert!(p.modify(fd, 0, Interest::READ).is_err());
    }
}
