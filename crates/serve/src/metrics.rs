//! Lock-free serving metrics: atomic counters plus a fixed-bucket
//! latency histogram.
//!
//! Counters are `Relaxed` — they are monotone tallies read only for
//! reporting, so no ordering is needed. The histogram buckets latency by
//! power-of-two microseconds (64 buckets cover 1 µs to ~2⁶³ µs), which
//! keeps `record` to one atomic increment and makes p50/p99 a cumulative
//! walk at `STATS` time; quantiles are upper bucket bounds, i.e. exact
//! to within the 2× bucket resolution.

use std::sync::atomic::{AtomicU64, Ordering};

const BUCKETS: usize = 64;

/// Fixed-bucket latency histogram (power-of-two microsecond buckets).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Records one observation in microseconds.
    pub fn record_micros(&self, micros: u64) {
        let idx = (64 - (micros | 1).leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q <= 1`) in milliseconds: the upper bound
    /// of the bucket holding the `ceil(q · count)`-th observation.
    /// Returns 0 when nothing has been recorded.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        self.quantile(q) / 1_000.0
    }

    /// The `q`-quantile in the raw recorded unit (the upper bucket
    /// bound). The histogram is unit-agnostic — the server also uses
    /// one to track pipeline depths, where the unit is requests per
    /// network read rather than microseconds.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return 2f64.powi(idx as i32);
            }
        }
        // Concurrent recording can move `count()` between the two scans;
        // the top bucket's bound is the honest answer then.
        2f64.powi(self.buckets.len() as i32 - 1)
    }
}

/// Counters the server exposes via `STATS` and dumps on shutdown.
#[derive(Debug, Default)]
pub struct Metrics {
    /// `QUERY` requests answered (including degraded ones).
    pub queries: AtomicU64,
    /// `LOAD` requests served.
    pub loads: AtomicU64,
    /// Requests answered with `ERR`.
    pub errors: AtomicU64,
    /// Fingerprints served from the cache.
    pub cache_hits: AtomicU64,
    /// Fingerprints computed because the cache missed.
    pub cache_misses: AtomicU64,
    /// Cache entries evicted under the byte ceiling.
    pub cache_evictions: AtomicU64,
    /// Whole selections served from the per-dataset result memo
    /// (budget-free repeats of an identical query — no selection ran).
    pub selection_hits: AtomicU64,
    /// Queries that returned a degraded (budget-curtailed) result.
    pub degraded: AtomicU64,
    /// `APPEND` requests served.
    pub appends: AtomicU64,
    /// Dominance tests spent fingerprinting (cumulative, cold paths only).
    pub dominance_tests: AtomicU64,
    /// Shard folds merged from the cache instead of re-scanned.
    pub shards_reused: AtomicU64,
    /// Bytes resident in the fingerprint cache (last observed).
    pub bytes_resident: AtomicU64,
    /// Shard folds served from the on-disk signature store.
    pub store_hits: AtomicU64,
    /// Store artefacts quarantined (corrupt, truncated or mis-keyed).
    pub store_quarantined: AtomicU64,
    /// Write-behind persistence attempts that failed (ENOSPC, rename…).
    pub store_write_failures: AtomicU64,
    /// Cluster fold legs dispatched to workers (every attempt counts).
    pub fanout_legs: AtomicU64,
    /// Fold legs retried on a replica after the preferred owner failed.
    pub fanout_retries: AtomicU64,
    /// Fold legs that exhausted every replica (the shard degraded).
    pub fanout_failures: AtomicU64,
    /// Shard movements executed by join/leave handoff plans.
    pub handoffs: AtomicU64,
    /// `BATCH` requests answered.
    pub batches: AtomicU64,
    /// Selections run inside `BATCH` requests (items across all batches).
    pub batch_items: AtomicU64,
    /// Connections switched to the binary framing via `HELLO`.
    pub hellos: AtomicU64,
    /// Request bytes read off accepted connections.
    pub bytes_in: AtomicU64,
    /// Response bytes written to accepted connections.
    pub bytes_out: AtomicU64,
    /// Connections accepted by the event loops.
    pub conns_accepted: AtomicU64,
    /// Connections shed by the idle/read or write deadline sweeps.
    pub conns_shed: AtomicU64,
    /// End-to-end `QUERY` latency.
    pub latency: LatencyHistogram,
    /// Per-leg cluster fan-out latency (connect through fold frame).
    pub fanout: LatencyHistogram,
    /// Requests parsed per network read (the pipelining depth actually
    /// observed on the wire; unit is requests, not time).
    pub pipeline: LatencyHistogram,
}

impl Metrics {
    /// A zeroed metrics block.
    pub fn new() -> Self {
        Self::default()
    }

    fn get(&self, c: &AtomicU64) -> u64 {
        c.load(Ordering::Relaxed)
    }

    /// Bumps a counter by 1.
    pub fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter (dominance-test tallies arrive in bulk).
    pub fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// One-line JSON snapshot (the `STATS` payload).
    pub fn snapshot_json(&self) -> String {
        format!(
            concat!(
                "{{\"queries\":{},\"loads\":{},\"errors\":{},",
                "\"cache_hits\":{},\"cache_misses\":{},\"cache_evictions\":{},",
                "\"selection_hits\":{},",
                "\"degraded\":{},\"appends\":{},\"dominance_tests\":{},",
                "\"shards_reused\":{},\"bytes_resident\":{},",
                "\"store_hits\":{},\"store_quarantined\":{},",
                "\"store_write_failures\":{},",
                "\"fanout_legs\":{},\"fanout_retries\":{},",
                "\"fanout_failures\":{},\"handoffs\":{},",
                "\"batches\":{},\"batch_items\":{},\"hellos\":{},",
                "\"bytes_in\":{},\"bytes_out\":{},",
                "\"conns_accepted\":{},\"conns_shed\":{},",
                "\"latency_count\":{},\"p50_ms\":{:.3},\"p99_ms\":{:.3},",
                "\"fanout_count\":{},\"fanout_p50_ms\":{:.3},\"fanout_p99_ms\":{:.3},",
                "\"pipeline_count\":{},\"pipeline_depth_p50\":{:.0},",
                "\"pipeline_depth_p99\":{:.0}}}"
            ),
            self.get(&self.queries),
            self.get(&self.loads),
            self.get(&self.errors),
            self.get(&self.cache_hits),
            self.get(&self.cache_misses),
            self.get(&self.cache_evictions),
            self.get(&self.selection_hits),
            self.get(&self.degraded),
            self.get(&self.appends),
            self.get(&self.dominance_tests),
            self.get(&self.shards_reused),
            self.get(&self.bytes_resident),
            self.get(&self.store_hits),
            self.get(&self.store_quarantined),
            self.get(&self.store_write_failures),
            self.get(&self.fanout_legs),
            self.get(&self.fanout_retries),
            self.get(&self.fanout_failures),
            self.get(&self.handoffs),
            self.get(&self.batches),
            self.get(&self.batch_items),
            self.get(&self.hellos),
            self.get(&self.bytes_in),
            self.get(&self.bytes_out),
            self.get(&self.conns_accepted),
            self.get(&self.conns_shed),
            self.latency.count(),
            self.latency.quantile_ms(0.50),
            self.latency.quantile_ms(0.99),
            self.fanout.count(),
            self.fanout.quantile_ms(0.50),
            self.fanout.quantile_ms(0.99),
            self.pipeline.count(),
            self.pipeline.quantile(0.50),
            self.pipeline.quantile(0.99),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_walk_buckets() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_ms(0.5), 0.0, "empty histogram");
        // 90 fast (≈100 µs) + 10 slow (≈100 ms) observations.
        for _ in 0..90 {
            h.record_micros(100);
        }
        for _ in 0..10 {
            h.record_micros(100_000);
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_ms(0.50);
        let p99 = h.quantile_ms(0.99);
        assert!(p50 < 1.0, "p50 {p50} ms should be in the fast band");
        assert!(p99 > 50.0, "p99 {p99} ms should be in the slow band");
        assert!(p50 <= p99);
    }

    #[test]
    fn extreme_observations_clamp_to_end_buckets() {
        let h = LatencyHistogram::default();
        h.record_micros(0);
        h.record_micros(u64::MAX);
        assert_eq!(h.count(), 2);
        assert!(h.quantile_ms(1.0) > 0.0);
    }

    #[test]
    fn snapshot_is_flat_json() {
        let m = Metrics::new();
        m.bump(&m.queries);
        m.bump(&m.cache_hits);
        m.latency.record_micros(1_000);
        let j = m.snapshot_json();
        assert_eq!(crate::protocol::json_u64(&j, "queries"), Some(1));
        assert_eq!(crate::protocol::json_u64(&j, "cache_hits"), Some(1));
        assert_eq!(crate::protocol::json_u64(&j, "cache_misses"), Some(0));
        assert_eq!(crate::protocol::json_u64(&j, "latency_count"), Some(1));
        assert!(crate::protocol::json_f64(&j, "p50_ms").is_some());
    }
}
