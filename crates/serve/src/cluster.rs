//! Distributed scatter-gather serving on the shard-merge invariant.
//!
//! A cluster is one **coordinator** plus N **workers**, all running the
//! same `skydiver serve` binary. The coordinator owns the dataset (it is
//! where `LOAD`/`APPEND` arrive), partitions it into shards, and routes
//! each shard to the workers that own it under rendezvous hashing with
//! replication factor R ([`skydiver_cluster::rendezvous`]). A `QUERY`
//! fans out as per-shard `FOLD` requests; each worker folds its shard
//! with the **same** `fold_shard` code the monolithic pipeline uses,
//! returns the fold as a checksummed `SKYSIG02` frame, and the
//! coordinator merges the folds in ascending shard order with the
//! associative [`SignatureAccumulator`] merge, then runs selection
//! locally.
//!
//! **Determinism contract.** The cluster answer is bit-identical to the
//! single-process answer because every ingredient is: canonicalisation
//! is row-local, row hashes are seeded by *global* ids (shipped with
//! each shard at `SHARDPUT` time as the view base), the skyline and its
//! canonical columns are computed once on the coordinator and shipped
//! in the `FOLD` body, and slot-min/score-sum merge is associative and
//! commutative. Budget-tripped prefixes match too: with a
//! dominance-test budget the fan-out runs **sequentially in shard
//! order**, forwarding the remaining budget to each leg, so the trip
//! lands on the same absolute row and the degraded payload (ids,
//! status string, dominance-test count) is byte-identical.
//!
//! **Failure model.** Every leg shares one [`DeadlineBudget`] per
//! request. A dead or slow owner is retried on the next replica with
//! whatever time is left; a shard with no reachable owner degrades the
//! fingerprint with [`StopReason::ShardUnavailable`] instead of failing
//! the query. A worker joining (or recovering) pulls its shards' folds
//! from surviving replicas via `REPLICATE`/`FETCH` — the PR 6 store
//! codec is the replication transport — and recomputes only on a miss.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use skydiver_cluster::frame;
use skydiver_cluster::rendezvous;
use skydiver_cluster::{DeadlineBudget, Membership};
use skydiver_core::minhash::persist::{decode_shard_signatures, encode_shard_signatures, fnv1a64};
use skydiver_core::{
    canonicalise, fold_shard, CancelToken, DegradationEvent, ExecContext, ExecPhase, Fingerprint,
    HashFamily, Interrupt, RunBudget, ShardFingerprint, ShardFold, SigGenOutput,
    SignatureAccumulator, SignatureMatrix, StopReason,
};
use skydiver_data::dominance::MinDominance;
use skydiver_data::{Dataset, DatasetView, Preference, ShardedDataset};
use skydiver_skyline::sfs;

use crate::cache::{FingerprintCache, FingerprintKey};
use crate::client::Client;
use crate::metrics::Metrics;
use crate::poll::{Interest, Poller};
use crate::protocol::{json_escape, json_u64, parse_response};
use crate::registry::{parse_prefs, read_points, Registry};
use crate::store::{prefs_hash, SignatureStore, StoreKey};

/// Replication pulls at handoff time use this ceiling when no request
/// deadline applies.
const HANDOFF_TIMEOUT_MS: u64 = 10_000;

/// Cluster role configuration carried by
/// [`ServerConfig`](crate::ServerConfig). Present ⇒ the server is a
/// coordinator; absent ⇒ it serves as a plain single-process server
/// that also answers the worker verbs (`SHARDPUT`/`FOLD`/…).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Worker addresses (`host:port`) forming the initial roster.
    pub workers: Vec<String>,
    /// Replication factor R: each shard is owned by `min(R, workers)`
    /// nodes.
    pub replication: usize,
    /// Shards a `LOAD` is partitioned into (appends add more).
    pub shards: usize,
    /// Deadline budget in milliseconds shared by **all** legs of one
    /// fan-out (a slow worker cannot consume more than what the other
    /// legs leave unused).
    pub fanout_timeout_ms: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: vec![],
            replication: 1,
            shards: 4,
            fanout_timeout_ms: 10_000,
        }
    }
}

// ---------------------------------------------------------------------
// Worker side: hosted shards + fold handling
// ---------------------------------------------------------------------

/// One shard of one dataset hosted on this worker.
#[derive(Debug)]
struct OwnedShard {
    /// Global id of the shard's first row.
    base: usize,
    /// FNV-1a of the shard's points payload — the generation tag a
    /// `FOLD` must match, so a worker that missed a `LOAD` can never
    /// fold stale rows undetected.
    shard_hash: u64,
    /// The rows.
    data: Arc<Dataset>,
}

#[derive(Debug, Default)]
struct HostedDataset {
    dims: usize,
    shards: HashMap<usize, OwnedShard>,
}

/// Worker-side state: the shards this node owns, plus its own
/// fingerprint LRU (and optional durable store) for fold reuse. Every
/// server carries one — a node needs no restart to be drafted into a
/// cluster.
pub struct ShardHost {
    hosted: RwLock<HashMap<String, HostedDataset>>,
    cache: Mutex<FingerprintCache>,
    store: Option<Arc<SignatureStore>>,
    metrics: Arc<Metrics>,
}

impl ShardHost {
    /// A host with an LRU fold cache of `cache_bytes` and an optional
    /// durable store shared with the rest of the server.
    pub fn new(
        cache_bytes: usize,
        metrics: Arc<Metrics>,
        store: Option<Arc<SignatureStore>>,
    ) -> Self {
        ShardHost {
            hosted: RwLock::new(HashMap::new()),
            cache: Mutex::new(FingerprintCache::new(cache_bytes)),
            store,
            metrics,
        }
    }

    /// `(datasets, shards)` hosted — for reporting.
    pub fn hosted_counts(&self) -> (usize, usize) {
        let hosted = self.hosted.read().unwrap_or_else(|e| e.into_inner());
        let shards = hosted.values().map(|d| d.shards.len()).sum();
        (hosted.len(), shards)
    }

    fn remember(&self, key: FingerprintKey, store_key: &StoreKey, fp: &Arc<ShardFingerprint>) {
        if let Some(store) = &self.store {
            store.enqueue_persist(store_key.clone(), Arc::clone(fp));
        }
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        cache.insert(key, Arc::clone(fp));
        self.metrics
            .bytes_resident
            .store(cache.bytes() as u64, std::sync::atomic::Ordering::Relaxed);
        self.metrics
            .cache_evictions
            .store(cache.evictions(), std::sync::atomic::Ordering::Relaxed);
    }

    /// `SHARDPUT`: install (or overwrite) one hosted shard. `replace`
    /// drops every shard previously hosted under `name` first (the
    /// coordinator sets it on the first put of a `LOAD` generation).
    /// Any change of a shard's content tag invalidates the dataset's
    /// cached folds — stale reuse is impossible by construction.
    pub fn shardput(
        &self,
        name: &str,
        shard: usize,
        base: usize,
        replace: bool,
        body: &[u8],
    ) -> Result<String, String> {
        let payload = frame::decode(body).map_err(|e| e.to_string())?;
        let (dims, flat) = frame::decode_points(payload).map_err(|e| e.to_string())?;
        let rows = flat.len() / dims;
        let shard_hash = fnv1a64(payload);
        let data = Arc::new(Dataset::from_flat(dims, flat));
        let invalidate = {
            let mut hosted = self.hosted.write().unwrap_or_else(|e| e.into_inner());
            let entry = hosted.entry(name.to_string()).or_default();
            let mut invalidate = false;
            if replace || (entry.dims != dims && !entry.shards.is_empty()) {
                entry.shards.clear();
                invalidate = true;
            }
            entry.dims = dims;
            if let Some(old) = entry.shards.get(&shard) {
                if old.shard_hash != shard_hash {
                    invalidate = true;
                }
            }
            entry.shards.insert(
                shard,
                OwnedShard {
                    base,
                    shard_hash,
                    data,
                },
            );
            invalidate
        };
        if invalidate {
            self.cache
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .invalidate_dataset(name);
        }
        Ok(format!("dataset={name} shard={shard} rows={rows}"))
    }

    /// `FOLD`: fold the hosted shard against the coordinator's skyline
    /// (shipped in the body), reusing this node's cached/stored fold
    /// exactly like the monolithic warm path. Returns the response
    /// header tail and the `SKYSIG02` frame.
    #[allow(clippy::too_many_arguments)]
    pub fn fold(
        &self,
        name: &str,
        dataset_hash: u64,
        shard: usize,
        want_shard_hash: u64,
        prefs_spec: &str,
        t: usize,
        seed: u64,
        max_dominance_tests: Option<u64>,
        timeout_ms: Option<u64>,
        body: &[u8],
        cancel: &CancelToken,
    ) -> Result<(String, Vec<u8>), String> {
        let payload = frame::decode(body).map_err(|e| e.to_string())?;
        let (dims, ids, cols_flat) =
            frame::decode_fold_request(payload).map_err(|e| e.to_string())?;
        let (base, data) = {
            let hosted = self.hosted.read().unwrap_or_else(|e| e.into_inner());
            let ds = hosted
                .get(name)
                .ok_or_else(|| format!("dataset {name:?} not hosted here"))?;
            let owned = ds
                .shards
                .get(&shard)
                .ok_or_else(|| format!("shard {shard} of {name:?} not hosted here"))?;
            if owned.shard_hash != want_shard_hash {
                return Err(format!(
                    "shard {shard} of {name:?} is a stale generation \
                     (have {:#018x}, coordinator expects {want_shard_hash:#018x})",
                    owned.shard_hash
                ));
            }
            if ds.dims != dims {
                return Err(format!(
                    "fold request has {dims} dims, hosted shard has {}",
                    ds.dims
                ));
            }
            (owned.base, Arc::clone(&owned.data))
        };
        let (prefs, prefs_key) = parse_prefs(Some(prefs_spec), dims)?;
        let canon = canonicalise(&data, &prefs).map_err(|e| e.to_string())?;

        let mut budget = RunBudget::none().with_cancel_token(cancel.clone());
        if let Some(n) = max_dominance_tests {
            budget = budget.with_max_dominance_tests(n);
        }
        if let Some(ms) = timeout_ms {
            budget = budget.with_deadline(Duration::from_millis(ms));
        }
        let ctx = ExecContext::new(budget);
        let family = HashFamily::new(t, seed);
        let m = ids.len();
        let cols: Vec<&[f64]> = (0..m)
            .map(|j| &cols_flat[j * dims..(j + 1) * dims])
            .collect();
        let mut skip = vec![false; data.len()];
        for (r, s) in skip.iter_mut().enumerate() {
            *s = ids.binary_search(&(base + r)).is_ok();
        }

        let key = FingerprintKey {
            dataset: name.to_string(),
            shard,
            prefs: prefs_key.clone(),
            t,
            seed,
        };
        let store_key = StoreKey {
            dataset_hash,
            shard,
            prefs_hash: prefs_hash(&prefs_key),
            t,
            seed,
        };
        let mut cached = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .filter(|c| c.t() == t);
        if cached.is_none() {
            if let Some(store) = &self.store {
                cached = store.load(&store_key).filter(|c| c.t() == t);
            }
        }

        let sview = DatasetView::with_base(canon.as_ref(), base);
        let outcome = fold_shard(
            sview,
            &ids,
            &cols,
            &skip,
            &family,
            cached.as_deref(),
            1,
            &ctx,
        );
        let tests = ctx.dominance_tests();
        let (encoded, reused, scanned, interrupt) = match outcome {
            ShardFold::ReusedExact => {
                // lint: allow(R1) -- ReusedExact is only returned when a
                // cache was supplied
                let c = cached.clone().expect("exact reuse implies a cache");
                (
                    encode_shard_signatures(&c, &store_key.tags()),
                    true,
                    0usize,
                    None,
                )
            }
            ShardFold::ReusedSuperset(acc) => {
                let fp = Arc::new(ShardFingerprint {
                    columns: ids.clone(),
                    acc,
                });
                self.remember(key, &store_key, &fp);
                (
                    encode_shard_signatures(&fp, &store_key.tags()),
                    true,
                    0,
                    None,
                )
            }
            ShardFold::Scanned {
                acc,
                scanned_rows,
                interrupt,
            } => {
                let fp = Arc::new(ShardFingerprint {
                    columns: ids.clone(),
                    acc,
                });
                if interrupt.is_none() {
                    self.remember(key, &store_key, &fp);
                }
                (
                    encode_shard_signatures(&fp, &store_key.tags()),
                    false,
                    scanned_rows,
                    interrupt,
                )
            }
        };
        self.metrics.add(&self.metrics.dominance_tests, tests);
        if reused {
            self.metrics.bump(&self.metrics.shards_reused);
        }
        let body = frame::encode(&encoded);
        let mut header = format!(
            "reused={} scanned={scanned} tests={tests} tripped={}",
            reused as u8,
            match &interrupt {
                None => "none",
                Some(i) => match i.reason {
                    StopReason::Cancelled => "cancelled",
                    StopReason::DeadlineExceeded { .. } => "deadline",
                    StopReason::DominanceBudgetExhausted { .. } => "dominance",
                    _ => "other",
                },
            }
        );
        if let Some(Interrupt {
            reason: StopReason::DominanceBudgetExhausted { used, limit },
            ..
        }) = &interrupt
        {
            header.push_str(&format!(" trip_used={used} trip_limit={limit}"));
        }
        header.push_str(&format!(" bytes={}", body.len()));
        Ok((header, body))
    }

    /// `FETCH`: serve a fold artefact from this node's LRU or store,
    /// as a `SKYSIG02` frame — the replication transport. Replies
    /// `found=0` (no body) on a miss.
    pub fn fetch(
        &self,
        name: &str,
        dataset_hash: u64,
        shard: usize,
        prefs_spec: &str,
        t: usize,
        seed: u64,
    ) -> Result<(String, Option<Vec<u8>>), String> {
        let dims_hint = prefs_spec.split(',').count();
        let (_, prefs_key) = parse_prefs(Some(prefs_spec), dims_hint)?;
        let key = FingerprintKey {
            dataset: name.to_string(),
            shard,
            prefs: prefs_key.clone(),
            t,
            seed,
        };
        let store_key = StoreKey {
            dataset_hash,
            shard,
            prefs_hash: prefs_hash(&prefs_key),
            t,
            seed,
        };
        let mut fp = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .filter(|c| c.t() == t);
        if fp.is_none() {
            if let Some(store) = &self.store {
                fp = store.load(&store_key).filter(|c| c.t() == t);
            }
        }
        match fp {
            Some(fp) => {
                let body = frame::encode(&encode_shard_signatures(&fp, &store_key.tags()));
                Ok((format!("found=1 bytes={}", body.len()), Some(body)))
            }
            None => Ok(("found=0".to_string(), None)),
        }
    }

    /// `REPLICATE`: pull one fold artefact from a peer (`FETCH`) and
    /// install it locally. Best-effort by design — a miss or transport
    /// failure replies `replicated=0` and the next `FOLD` recomputes.
    #[allow(clippy::too_many_arguments)]
    pub fn replicate(
        &self,
        name: &str,
        dataset_hash: u64,
        shard: usize,
        prefs_spec: &str,
        t: usize,
        seed: u64,
        from: &str,
    ) -> Result<String, String> {
        let dims_hint = prefs_spec.split(',').count();
        let (_, prefs_key) = parse_prefs(Some(prefs_spec), dims_hint)?;
        let store_key = StoreKey {
            dataset_hash,
            shard,
            prefs_hash: prefs_hash(&prefs_key),
            t,
            seed,
        };
        let deadline = DeadlineBudget::from_millis(HANDOFF_TIMEOUT_MS);
        let pulled = pull_artefact(from, name, &store_key, &prefs_key, &deadline);
        match pulled {
            Some(fp) => {
                let key = FingerprintKey {
                    dataset: name.to_string(),
                    shard,
                    prefs: prefs_key,
                    t,
                    seed,
                };
                self.remember(key, &store_key, &fp);
                Ok("replicated=1".to_string())
            }
            None => Ok("replicated=0".to_string()),
        }
    }
}

/// Fetches one artefact from a peer, validating frame checksum, key
/// tags and signature size before accepting it.
fn pull_artefact(
    from: &str,
    name: &str,
    store_key: &StoreKey,
    prefs_key: &str,
    deadline: &DeadlineBudget,
) -> Option<Arc<ShardFingerprint>> {
    let mut client = connect_deadline(from, deadline).ok()?;
    let line = format!(
        "FETCH name={name} hash={} shard={} prefs={prefs_key} t={} seed={}",
        store_key.dataset_hash, store_key.shard, store_key.t, store_key.seed
    );
    let (header, body) = client.exchange_frame(&line, None).ok()?;
    if json_kv_u64(&header, "found") != Some(1) {
        return None;
    }
    let body = body?;
    let payload = frame::decode(&body).ok()?;
    let (fp, tags) = decode_shard_signatures(payload).ok()?;
    if tags != store_key.tags() || fp.t() != store_key.t {
        return None;
    }
    Some(Arc::new(fp))
}

/// Extracts `key=<u64>` from a space-separated response header.
fn json_kv_u64(header: &str, key: &str) -> Option<u64> {
    header
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .and_then(|v| v.parse().ok())
}

// ---------------------------------------------------------------------
// Coordinator side
// ---------------------------------------------------------------------

/// Per-dataset routing state the coordinator keeps alongside the
/// registry: the durable-store coordinate plus each shard's content tag
/// and global-id range.
#[derive(Debug, Clone)]
struct DatasetRouting {
    content_hash: u64,
    dims: usize,
    shard_hashes: Vec<u64>,
}

/// One completed fold leg of a fan-out.
struct Leg {
    fp: ShardFingerprint,
    reused: bool,
    tests: u64,
    trip: Option<LegTrip>,
}

/// A budget trip reported by a worker, in coordinator terms.
enum LegTrip {
    Cancelled,
    Deadline,
    Dominance { used: u64 },
}

/// Coordinator state: the roster, per-dataset routing, and the fold
/// combinations seen so far (replayed to joining workers as
/// `REPLICATE` pulls).
pub struct ClusterState {
    replication: usize,
    shards: usize,
    fanout_timeout_ms: u64,
    membership: Mutex<Membership>,
    routing: Mutex<HashMap<String, DatasetRouting>>,
    seen: Mutex<Vec<(String, String, usize, u64)>>,
    metrics: Arc<Metrics>,
}

/// Fold combinations remembered for join-time replication (bounded).
const SEEN_CAP: usize = 64;

impl ClusterState {
    /// A coordinator over `cfg`'s initial roster.
    pub fn new(cfg: &ClusterConfig, metrics: Arc<Metrics>) -> Self {
        ClusterState {
            replication: cfg.replication.max(1),
            shards: cfg.shards.max(1),
            fanout_timeout_ms: cfg.fanout_timeout_ms.max(1),
            membership: Mutex::new(Membership::new(cfg.workers.clone())),
            routing: Mutex::new(HashMap::new()),
            seen: Mutex::new(Vec::new()),
            metrics,
        }
    }

    fn roster(&self) -> (u64, Vec<String>) {
        let m = self.membership.lock().unwrap_or_else(|e| e.into_inner());
        (m.epoch(), m.nodes().to_vec())
    }

    fn note_seen(&self, name: &str, prefs_key: &str, t: usize, seed: u64) {
        let combo = (name.to_string(), prefs_key.to_string(), t, seed);
        let mut seen = self.seen.lock().unwrap_or_else(|e| e.into_inner());
        if !seen.contains(&combo) {
            if seen.len() >= SEEN_CAP {
                seen.remove(0);
            }
            seen.push(combo);
        }
    }

    /// Coordinator `LOAD`: read, partition into the configured shard
    /// count, install locally (the coordinator keeps a full copy — it
    /// is the source of truth for routing and the greedy baseline),
    /// and route every shard to its owners. Fails if any shard reaches
    /// no owner at all.
    pub fn load(&self, registry: &Registry, name: &str, path: &str) -> Result<String, String> {
        let data = read_points(path)?;
        let sd = ShardedDataset::partition(&data, self.shards.min(data.len().max(1)));
        let (points, dims) = registry.insert_sharded(name, sd);
        self.reroute_all(registry, name, true)?;
        let (_, nodes) = self.roster();
        let shards = registry
            .dataset(name)
            .map(|d| d.data.num_shards())
            .unwrap_or(0);
        Ok(format!(
            "dataset={name} points={points} dims={dims} shards={shards} workers={}",
            nodes.len()
        ))
    }

    /// Coordinator `APPEND`: grow the local dataset by one shard and
    /// route only the new shard to its owners (old shards — and their
    /// folds on the workers — stay valid, the warm-append contract).
    pub fn append(&self, registry: &Registry, name: &str, path: &str) -> Result<String, String> {
        let block = read_points(path)?;
        let (points, dims, shards, appended) = registry.append_dataset(name, block)?;
        let ds = registry
            .dataset(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let new_shard = shards - 1;
        let payload = frame::encode_points(dims, ds.data.shard_view(new_shard).as_flat());
        let shard_hash = fnv1a64(&payload);
        {
            let mut routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            match routing.get_mut(name) {
                Some(r) => {
                    r.content_hash = ds.content_hash;
                    r.shard_hashes.push(shard_hash);
                }
                None => {
                    drop(routing);
                    self.reroute_all(registry, name, false)?;
                }
            }
        }
        let (_, nodes) = self.roster();
        let deadline = DeadlineBudget::from_millis(self.fanout_timeout_ms);
        let (lo, _) = ds.data.shard_range(new_shard);
        let mut placed = 0usize;
        let owners = rendezvous::owners(&nodes, new_shard, self.replication);
        for owner in &owners {
            if self
                .put_shard(owner, name, new_shard, lo, false, &payload, &deadline)
                .is_ok()
            {
                placed += 1;
            }
        }
        if placed == 0 && !owners.is_empty() {
            return Err(format!("appended shard {new_shard} reached no owner"));
        }
        Ok(format!(
            "dataset={name} points={points} dims={dims} shards={shards} appended={appended}"
        ))
    }

    /// Rebuilds routing for `name` from the registry copy and pushes
    /// every shard to its owners (`replace` marks a fresh generation —
    /// the first put to each worker clears its previous shards of this
    /// dataset).
    fn reroute_all(&self, registry: &Registry, name: &str, replace: bool) -> Result<(), String> {
        let ds = registry
            .dataset(name)
            .ok_or_else(|| format!("unknown dataset {name:?}"))?;
        let dims = ds.data.dims();
        let nshards = ds.data.num_shards();
        let mut payloads = Vec::with_capacity(nshards);
        let mut shard_hashes = Vec::with_capacity(nshards);
        for i in 0..nshards {
            let payload = frame::encode_points(dims, ds.data.shard_view(i).as_flat());
            shard_hashes.push(fnv1a64(&payload));
            payloads.push(payload);
        }
        self.routing
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(
                name.to_string(),
                DatasetRouting {
                    content_hash: ds.content_hash,
                    dims,
                    shard_hashes,
                },
            );
        let (_, nodes) = self.roster();
        if nodes.is_empty() {
            return Ok(());
        }
        let deadline = DeadlineBudget::from_millis(self.fanout_timeout_ms);
        let mut cleared: HashSet<String> = HashSet::new();
        for (shard, payload) in payloads.iter().enumerate() {
            let (lo, _) = ds.data.shard_range(shard);
            let mut placed = 0usize;
            for owner in rendezvous::owners(&nodes, shard, self.replication) {
                let first_contact = cleared.insert(owner.clone());
                let rep = replace && first_contact;
                match self.put_shard(&owner, name, shard, lo, rep, payload, &deadline) {
                    Ok(()) => placed += 1,
                    Err(e) => eprintln!(
                        "skydiver-cluster: SHARDPUT {name}/{shard} -> {owner} failed: {e}"
                    ),
                }
            }
            if placed == 0 {
                return Err(format!("shard {shard} of {name:?} reached no owner"));
            }
        }
        Ok(())
    }

    /// One `SHARDPUT` to one worker.
    #[allow(clippy::too_many_arguments)]
    fn put_shard(
        &self,
        owner: &str,
        name: &str,
        shard: usize,
        base: usize,
        replace: bool,
        payload: &[u8],
        deadline: &DeadlineBudget,
    ) -> Result<(), String> {
        let body = frame::encode(payload);
        let mut client = connect_deadline(owner, deadline).map_err(|e| e.to_string())?;
        let line = format!(
            "SHARDPUT name={name} shard={shard} base={base} replace={} bytes={}",
            replace as u8,
            body.len()
        );
        client
            .exchange_frame(&line, Some(&body))
            .map(|_| ())
            .map_err(|e| e.to_string())
    }

    /// `JOIN addr=…`: add a worker, push it the shards it now owns and
    /// ask it to pull the known fold artefacts from surviving donors.
    pub fn join(&self, registry: &Registry, addr: &str) -> Result<String, String> {
        self.reshape(registry, addr, true)
    }

    /// `LEAVE addr=…`: retire a worker; shards it owned move to the
    /// rendezvous successors, which pull folds from surviving replicas.
    pub fn leave(&self, registry: &Registry, addr: &str) -> Result<String, String> {
        self.reshape(registry, addr, false)
    }

    fn reshape(&self, registry: &Registry, addr: &str, join: bool) -> Result<String, String> {
        let max_shards = {
            let routing = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            routing
                .values()
                .map(|r| r.shard_hashes.len())
                .max()
                .unwrap_or(0)
        }
        .max(self.shards);
        let (epoch, workers, plan) = {
            let mut m = self.membership.lock().unwrap_or_else(|e| e.into_inner());
            let plan = if join {
                m.join(addr, max_shards, self.replication)
            } else {
                m.leave(addr, max_shards, self.replication)
            };
            (m.epoch(), m.nodes().len(), plan)
        };
        let Some(plan) = plan else {
            return Ok(format!("epoch={epoch} workers={workers} moved=0"));
        };
        let moved = self.apply_handoffs(registry, &plan);
        Ok(format!("epoch={epoch} workers={workers} moved={moved}"))
    }

    /// Executes a handoff plan: for every `(shard, new owner)` move and
    /// every dataset, ship the rows from the coordinator's copy, then
    /// ask the new owner to pull the fold artefacts this cluster has
    /// computed so far from a surviving donor. Best-effort per leg —
    /// a failed move surfaces at query time as a replica retry.
    fn apply_handoffs(&self, registry: &Registry, plan: &[skydiver_cluster::Handoff]) -> usize {
        let routing: Vec<(String, DatasetRouting)> = {
            let r = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            r.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        let seen: Vec<(String, String, usize, u64)> = {
            let s = self.seen.lock().unwrap_or_else(|e| e.into_inner());
            s.clone()
        };
        let deadline = DeadlineBudget::from_millis(HANDOFF_TIMEOUT_MS);
        let mut moved = 0usize;
        for h in plan {
            for (name, route) in &routing {
                if h.shard >= route.shard_hashes.len() {
                    continue;
                }
                let Some(ds) = registry.dataset(name) else {
                    continue;
                };
                if h.shard >= ds.data.num_shards() {
                    continue;
                }
                let payload =
                    frame::encode_points(route.dims, ds.data.shard_view(h.shard).as_flat());
                let (lo, _) = ds.data.shard_range(h.shard);
                match self.put_shard(&h.to, name, h.shard, lo, false, &payload, &deadline) {
                    Ok(()) => {
                        moved += 1;
                        self.metrics.bump(&self.metrics.handoffs);
                    }
                    Err(e) => {
                        eprintln!(
                            "skydiver-cluster: handoff {name}/{} -> {} failed: {e}",
                            h.shard, h.to
                        );
                        continue;
                    }
                }
                let Some(from) = &h.from else { continue };
                for (cname, prefs_key, t, seed) in &seen {
                    if cname != name {
                        continue;
                    }
                    let line = format!(
                        "REPLICATE name={name} hash={} shard={} prefs={prefs_key} \
                         t={t} seed={seed} from={from}",
                        route.content_hash, h.shard
                    );
                    if let Ok(mut client) = connect_deadline(&h.to, &deadline) {
                        let _ = client.exchange_frame(&line, None);
                    }
                }
            }
        }
        moved
    }

    /// The coordinator's fingerprint path — the cluster twin of
    /// [`Registry::fingerprint`], with identical memoisation, budget and
    /// return semantics. Fan-out legs run concurrently — multiplexed on
    /// the calling thread by the readiness shim, not a thread per shard
    /// — except when a dominance-test budget is set: then legs run
    /// sequentially in shard order forwarding the remaining budget, so
    /// the trip lands on the same absolute row as the monolithic run
    /// and the degraded payload is bit-identical.
    #[allow(clippy::too_many_arguments)]
    pub fn fingerprint(
        &self,
        registry: &Registry,
        name: &str,
        prefs: &[Preference],
        prefs_key: &str,
        t: usize,
        seed: u64,
        budget: RunBudget,
        max_dominance_tests: Option<u64>,
        timeout_ms: Option<u64>,
    ) -> Result<(Arc<Fingerprint>, bool, u64), String> {
        let ds = registry
            .dataset(name)
            .ok_or_else(|| format!("unknown dataset {name:?} (LOAD it first)"))?;
        let memo_key = (prefs_key.to_string(), t, seed);
        if let Some(fp) = ds.memo_get(&memo_key) {
            self.metrics.bump(&self.metrics.cache_hits);
            return Ok((fp, true, 0));
        }
        let (_, nodes) = self.roster();
        let routing = {
            let r = self.routing.lock().unwrap_or_else(|e| e.into_inner());
            r.get(name).cloned()
        };
        let (Some(routing), false) = (routing, nodes.is_empty()) else {
            // No workers (or a dataset loaded outside cluster routing):
            // fall back to the local monolithic path — same bits.
            return registry.fingerprint(name, prefs, prefs_key, t, seed, budget);
        };
        self.metrics.bump(&self.metrics.cache_misses);
        if t == 0 {
            return Err("signature size t must be positive".to_string());
        }

        // Phase 1 locally: canonicalise + skyline, exactly as the
        // monolithic `fingerprint_sharded_with` does before its shard
        // loop (neither charges dominance tests).
        let ctx = ExecContext::new(budget);
        let whole = ds.whole();
        let canon = canonicalise(&whole, prefs).map_err(|e| e.to_string())?;
        if let Err(int) = ctx.check(ExecPhase::Skyline) {
            let fp = Fingerprint {
                skyline: vec![],
                output: SigGenOutput {
                    matrix: SignatureMatrix::new(t, 0),
                    scores: vec![],
                },
                fingerprint_ms: 0.0,
                events: vec![],
                interrupt: Some(int),
            };
            return Ok((Arc::new(fp), false, 0));
        }
        let skyline = sfs(canon.as_ref(), &MinDominance);
        if skyline.is_empty() {
            return Err("empty skyline: no finite points to diversify".to_string());
        }
        let m = skyline.len();
        let dims = routing.dims;
        let mut cols_flat = Vec::with_capacity(m * dims);
        for &s in &skyline {
            cols_flat.extend_from_slice(canon.point(s));
        }
        let fold_payload = frame::encode(&frame::encode_fold_request(dims, &skyline, &cols_flat));
        let nshards = ds.data.num_shards();
        let deadline = DeadlineBudget::from_millis(
            timeout_ms
                .unwrap_or(self.fanout_timeout_ms)
                .min(self.fanout_timeout_ms),
        );

        let t0 = Instant::now();
        let legs: Vec<Result<Leg, String>> = if let Some(limit) = max_dominance_tests {
            // Sequential, shard order, forwarding the remaining budget:
            // worker i trips exactly when global used would exceed the
            // limit, reproducing the monolithic trip row.
            let mut out = Vec::with_capacity(nshards);
            let mut consumed = 0u64;
            // lint: allow(R2) -- every iteration runs under the shared
            // fan-out `deadline` and the forwarded dominance budget; a
            // tripped leg breaks out below
            for shard in 0..nshards {
                let remaining = limit.saturating_sub(consumed);
                let leg = self.fold_leg(
                    &nodes,
                    name,
                    &routing,
                    shard,
                    &fold_payload,
                    prefs_key,
                    t,
                    seed,
                    Some(remaining),
                    &deadline,
                    &skyline,
                );
                let stop = match &leg {
                    Ok(l) => {
                        consumed += l.tests;
                        l.trip.is_some()
                    }
                    Err(_) => false,
                };
                out.push(leg);
                if stop {
                    break;
                }
            }
            out
        } else {
            // Unbudgeted fan-out: all legs multiplexed on this thread by
            // the readiness shim — no thread per shard, and the shared
            // deadline bounds the slowest worker, not the sum of legs.
            self.fold_legs_multiplexed(
                &nodes,
                name,
                &routing,
                nshards,
                &fold_payload,
                prefs_key,
                t,
                seed,
                &deadline,
                &skyline,
            )
        };

        // Merge in ascending shard order (the monolithic order; the
        // merge is commutative, so parallel completion order is moot).
        let mut merged = SignatureAccumulator::new(t, m);
        let mut dominance_tests = 0u64;
        let mut reused = 0u64;
        let mut prefix_tests = 0u64;
        let mut interrupt: Option<Interrupt> = None;
        let mut failed_shard: Option<usize> = None;
        for (shard, leg) in legs.iter().enumerate() {
            match leg {
                Ok(l) => {
                    merged.merge(&l.fp.acc);
                    dominance_tests += l.tests;
                    if l.reused {
                        reused += 1;
                    }
                    if interrupt.is_none() && failed_shard.is_none() {
                        interrupt = l.trip.as_ref().map(|trip| Interrupt {
                            phase: ExecPhase::Fingerprint,
                            reason: match trip {
                                LegTrip::Cancelled => StopReason::Cancelled,
                                LegTrip::Deadline => StopReason::DeadlineExceeded {
                                    elapsed: ctx.elapsed(),
                                },
                                LegTrip::Dominance { used } => {
                                    StopReason::DominanceBudgetExhausted {
                                        used: prefix_tests + used,
                                        limit: max_dominance_tests.unwrap_or(0),
                                    }
                                }
                            },
                        });
                    }
                    prefix_tests += l.tests;
                }
                Err(e) => {
                    if failed_shard.is_none() && interrupt.is_none() {
                        failed_shard = Some(shard);
                        eprintln!("skydiver-cluster: shard {shard} of {name:?} failed: {e}");
                    }
                }
            }
        }
        if let Some(shard) = failed_shard {
            interrupt = Some(Interrupt {
                phase: ExecPhase::Fingerprint,
                reason: StopReason::ShardUnavailable { shard },
            });
        }
        let mut events = Vec::new();
        if interrupt.is_some() {
            events.push(DegradationEvent::FingerprintCurtailed {
                rows_scanned: merged.rows_consumed,
                rows_total: canon.len(),
            });
        }
        let fingerprint_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fp = Arc::new(Fingerprint {
            skyline,
            output: merged.into_output(),
            fingerprint_ms,
            events,
            interrupt,
        });
        self.metrics
            .add(&self.metrics.dominance_tests, dominance_tests);
        self.metrics.add(&self.metrics.shards_reused, reused);
        if fp.is_complete() {
            ds.memo_put(memo_key, Arc::clone(&fp));
            self.note_seen(name, prefs_key, t, seed);
        }
        Ok((fp, false, dominance_tests))
    }

    /// One shard's fold: try each owner in rendezvous order under the
    /// shared deadline; first success wins, a failed owner falls
    /// through to the next replica with whatever time is left.
    #[allow(clippy::too_many_arguments)]
    fn fold_leg(
        &self,
        nodes: &[String],
        name: &str,
        routing: &DatasetRouting,
        shard: usize,
        fold_payload: &[u8],
        prefs_key: &str,
        t: usize,
        seed: u64,
        max_dominance_tests: Option<u64>,
        deadline: &DeadlineBudget,
        skyline: &[usize],
    ) -> Result<Leg, String> {
        let owners = rendezvous::owners(nodes, shard, self.replication);
        let mut last_err = format!("shard {shard}: no owners in roster");
        // lint: allow(R2) -- bounded by the replication factor and the
        // shared fan-out deadline checked on entry to every attempt
        for (attempt, owner) in owners.iter().enumerate() {
            let Some(ms) = deadline.remaining_ms() else {
                last_err = format!("shard {shard}: fan-out deadline exhausted");
                break;
            };
            self.metrics.bump(&self.metrics.fanout_legs);
            if attempt > 0 {
                self.metrics.bump(&self.metrics.fanout_retries);
            }
            let t0 = Instant::now();
            match self.try_fold(
                owner,
                name,
                routing,
                shard,
                fold_payload,
                prefs_key,
                t,
                seed,
                max_dominance_tests,
                ms,
                deadline,
                skyline,
            ) {
                Ok(leg) => {
                    self.metrics
                        .fanout
                        .record_micros(t0.elapsed().as_micros() as u64);
                    return Ok(leg);
                }
                Err(e) => last_err = format!("shard {shard} via {owner}: {e}"),
            }
        }
        self.metrics.bump(&self.metrics.fanout_failures);
        Err(last_err)
    }

    /// One `FOLD` exchange with one owner.
    #[allow(clippy::too_many_arguments)]
    fn try_fold(
        &self,
        owner: &str,
        name: &str,
        routing: &DatasetRouting,
        shard: usize,
        fold_payload: &[u8],
        prefs_key: &str,
        t: usize,
        seed: u64,
        max_dominance_tests: Option<u64>,
        timeout_ms: u64,
        deadline: &DeadlineBudget,
        skyline: &[usize],
    ) -> Result<Leg, String> {
        let mut client = connect_deadline(owner, deadline).map_err(|e| e.to_string())?;
        let line = fold_request_line(
            name,
            routing,
            shard,
            prefs_key,
            t,
            seed,
            max_dominance_tests,
            timeout_ms,
            fold_payload.len(),
        );
        let (header, body) = client.exchange_frame(&line, Some(fold_payload))?;
        parse_fold_leg(&header, body, routing, shard, prefs_key, t, seed, skyline)
    }

    /// All unbudgeted legs multiplexed on the calling thread: each leg
    /// is a connect→write→read state machine driven by the readiness
    /// shim, retried on the next replica on any failure, all under the
    /// one shared deadline. Replaces a thread per shard — the slowest
    /// worker bounds the wall clock, and a stalled peer can never pin a
    /// coordinator thread past the deadline.
    #[allow(clippy::too_many_arguments)]
    fn fold_legs_multiplexed(
        &self,
        nodes: &[String],
        name: &str,
        routing: &DatasetRouting,
        nshards: usize,
        fold_payload: &[u8],
        prefs_key: &str,
        t: usize,
        seed: u64,
        budget: &DeadlineBudget,
        skyline: &[usize],
    ) -> Vec<Result<Leg, String>> {
        let mut poller = match Poller::new() {
            Ok(p) => p,
            Err(e) => {
                // A node-local resource failure (fd limit); the blocking
                // per-shard path still answers correctly, just serially.
                eprintln!("skydiver-cluster: poller unavailable ({e}); sequential fan-out");
                return (0..nshards)
                    .map(|shard| {
                        self.fold_leg(
                            nodes,
                            name,
                            routing,
                            shard,
                            fold_payload,
                            prefs_key,
                            t,
                            seed,
                            None,
                            budget,
                            skyline,
                        )
                    })
                    .collect();
            }
        };
        let mut legs: Vec<LegState> = (0..nshards)
            .map(|shard| LegState {
                owners: rendezvous::owners(nodes, shard, self.replication),
                attempt: 0,
                conn: None,
                last_err: format!("shard {shard}: no owners in roster"),
                done: None,
            })
            .collect();
        for (shard, leg) in legs.iter_mut().enumerate() {
            self.start_leg_attempt(
                &mut poller,
                leg,
                shard,
                name,
                routing,
                prefs_key,
                t,
                seed,
                fold_payload,
                budget,
            );
        }
        let mut events = Vec::new();
        // lint: allow(R2) -- every pass checks the shared fan-out
        // `budget` and fails all pending legs once it expires
        while legs.iter().any(|l| l.done.is_none()) {
            let Some(ms) = budget.remaining_ms() else {
                fail_pending(&mut poller, &mut legs, &self.metrics, |shard| {
                    format!("shard {shard}: fan-out deadline exhausted")
                });
                break;
            };
            if let Err(e) = poller.wait(&mut events, Some(Duration::from_millis(ms.min(50)))) {
                fail_pending(&mut poller, &mut legs, &self.metrics, |shard| {
                    format!("shard {shard}: poll wait failed: {e}")
                });
                break;
            }
            for ev in &events {
                let shard = ev.token as usize;
                let Some(leg) = legs.get_mut(shard) else {
                    continue;
                };
                if leg.done.is_some() {
                    continue;
                }
                let Some(conn) = leg.conn.as_mut() else {
                    continue;
                };
                match drive_conn(
                    &mut poller,
                    conn,
                    ev.token,
                    ev.readable,
                    ev.writable,
                    ev.closed,
                ) {
                    Drive::Pending => {}
                    Drive::Complete(line, body) => {
                        let parsed = parse_response(&line).and_then(|header| {
                            parse_fold_leg(
                                &header, body, routing, shard, prefs_key, t, seed, skyline,
                            )
                        });
                        match parsed {
                            Ok(l) => {
                                if let Some(conn) = leg.conn.take() {
                                    self.metrics
                                        .fanout
                                        .record_micros(conn.started.elapsed().as_micros() as u64);
                                    let _ = poller.deregister(conn.stream.as_raw_fd());
                                }
                                leg.done = Some(Ok(l));
                            }
                            Err(e) => self.retry_leg(
                                &mut poller,
                                leg,
                                shard,
                                &e,
                                name,
                                routing,
                                prefs_key,
                                t,
                                seed,
                                fold_payload,
                                budget,
                            ),
                        }
                    }
                    Drive::Failed(e) => self.retry_leg(
                        &mut poller,
                        leg,
                        shard,
                        &e,
                        name,
                        routing,
                        prefs_key,
                        t,
                        seed,
                        fold_payload,
                        budget,
                    ),
                }
            }
        }
        legs.into_iter()
            .enumerate()
            .map(|(shard, l)| {
                l.done
                    .unwrap_or_else(|| Err(format!("shard {shard}: fan-out incomplete")))
            })
            .collect()
    }

    /// Drops a failed attempt's connection and moves the leg to its
    /// next replica (or marks it failed when none remain).
    #[allow(clippy::too_many_arguments)]
    fn retry_leg(
        &self,
        poller: &mut Poller,
        leg: &mut LegState,
        shard: usize,
        err: &str,
        name: &str,
        routing: &DatasetRouting,
        prefs_key: &str,
        t: usize,
        seed: u64,
        fold_payload: &[u8],
        budget: &DeadlineBudget,
    ) {
        if let Some(conn) = leg.conn.take() {
            let _ = poller.deregister(conn.stream.as_raw_fd());
            leg.last_err = format!("shard {shard} via {}: {err}", conn.owner);
        }
        self.start_leg_attempt(
            poller,
            leg,
            shard,
            name,
            routing,
            prefs_key,
            t,
            seed,
            fold_payload,
            budget,
        );
    }

    /// Connects the leg's next replica (blocking connect bounded by the
    /// remaining deadline, then switched nonblocking), queues the `FOLD`
    /// request bytes, and registers the socket with the poller. Marks
    /// the leg failed when every replica has been tried.
    #[allow(clippy::too_many_arguments)]
    fn start_leg_attempt(
        &self,
        poller: &mut Poller,
        leg: &mut LegState,
        shard: usize,
        name: &str,
        routing: &DatasetRouting,
        prefs_key: &str,
        t: usize,
        seed: u64,
        fold_payload: &[u8],
        budget: &DeadlineBudget,
    ) {
        // lint: allow(R2) -- bounded by the replication factor, with the
        // shared fan-out budget checked on entry to every attempt
        while leg.attempt < leg.owners.len() {
            let Some(ms) = budget.remaining_ms() else {
                leg.last_err = format!("shard {shard}: fan-out deadline exhausted");
                break;
            };
            let owner = leg.owners[leg.attempt].clone();
            let attempt = leg.attempt;
            leg.attempt += 1;
            self.metrics.bump(&self.metrics.fanout_legs);
            if attempt > 0 {
                self.metrics.bump(&self.metrics.fanout_retries);
            }
            let started = Instant::now();
            match connect_nonblocking(&owner, budget) {
                Ok(stream) => {
                    if let Err(e) = poller.register(stream.as_raw_fd(), shard as u64, Interest::BOTH)
                    {
                        leg.last_err = format!("shard {shard} via {owner}: register: {e}");
                        continue;
                    }
                    let line = fold_request_line(
                        name,
                        routing,
                        shard,
                        prefs_key,
                        t,
                        seed,
                        None,
                        ms,
                        fold_payload.len(),
                    );
                    let mut wbuf = line.into_bytes();
                    wbuf.push(b'\n');
                    wbuf.extend_from_slice(fold_payload);
                    leg.conn = Some(LegConn {
                        stream,
                        owner,
                        wbuf,
                        wpos: 0,
                        rbuf: Vec::new(),
                        started,
                    });
                    return;
                }
                Err(e) => leg.last_err = format!("shard {shard} via {owner}: {e}"),
            }
        }
        self.metrics.bump(&self.metrics.fanout_failures);
        leg.done = Some(Err(std::mem::take(&mut leg.last_err)));
    }

    /// The cluster `STATS` roll-up: the coordinator's own snapshot plus
    /// a `cluster` object with the roster, every worker's snapshot
    /// (fetched under one shared deadline) and a merged view of the
    /// core counters.
    pub fn stats_rollup(&self, registry: &Registry) -> String {
        let mut json = registry.stats_json();
        let (epoch, nodes) = self.roster();
        let deadline = DeadlineBudget::from_millis(self.fanout_timeout_ms);
        let mut node_parts = Vec::with_capacity(nodes.len());
        let mut merged: [(&str, u64); 5] = [
            ("queries", 0),
            ("errors", 0),
            ("dominance_tests", 0),
            ("shards_reused", 0),
            ("store_hits", 0),
        ];
        for node in &nodes {
            let stats = connect_deadline(node, &deadline)
                .map_err(|e| e.to_string())
                .and_then(|mut c| c.stats());
            match stats {
                Ok(s) => {
                    for (key, acc) in merged.iter_mut() {
                        *acc += json_u64(&s, key).unwrap_or(0);
                    }
                    node_parts.push(format!(
                        "{{\"addr\":\"{}\",\"ok\":true,\"stats\":{s}}}",
                        json_escape(node)
                    ));
                }
                Err(e) => node_parts.push(format!(
                    "{{\"addr\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                    json_escape(node),
                    json_escape(&e)
                )),
            }
        }
        let merged_json = merged
            .iter()
            .map(|(k, v)| format!("\"{k}\":{v}"))
            .collect::<Vec<_>>()
            .join(",");
        // Same splice discipline as `Registry::stats_json`: the pop
        // must run in every profile.
        debug_assert!(json.ends_with('}'));
        json.pop();
        json.push_str(&format!(
            ",\"cluster\":{{\"epoch\":{epoch},\"workers\":{},\"replication\":{},\
             \"shards\":{},\"nodes\":[{}],\"merged\":{{{merged_json}}}}}}}",
            nodes.len(),
            self.replication,
            self.shards,
            node_parts.join(","),
        ));
        json
    }
}

/// One in-flight multiplexed fan-out connection: the queued request
/// bytes going out and the buffered response coming back.
struct LegConn {
    stream: TcpStream,
    owner: String,
    wbuf: Vec<u8>,
    wpos: usize,
    rbuf: Vec<u8>,
    started: Instant,
}

/// One shard's leg in the multiplexed fan-out.
struct LegState {
    owners: Vec<String>,
    attempt: usize,
    conn: Option<LegConn>,
    last_err: String,
    done: Option<Result<Leg, String>>,
}

/// Outcome of driving one connection through a readiness event.
enum Drive {
    /// More bytes to move; keep the connection registered.
    Pending,
    /// One full response buffered: the raw status line and its body.
    Complete(String, Option<Vec<u8>>),
    /// The attempt failed; the caller retries on the next replica.
    Failed(String),
}

/// Builds the `FOLD` request line — one format string for the blocking
/// and multiplexed paths, so the wire bytes cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn fold_request_line(
    name: &str,
    routing: &DatasetRouting,
    shard: usize,
    prefs_key: &str,
    t: usize,
    seed: u64,
    max_dominance_tests: Option<u64>,
    timeout_ms: u64,
    body_len: usize,
) -> String {
    let mut line = format!(
        "FOLD dataset={name} hash={} shard={shard} shard_hash={} prefs={prefs_key} \
         t={t} seed={seed} timeout_ms={timeout_ms}",
        routing.content_hash, routing.shard_hashes[shard]
    );
    if let Some(n) = max_dominance_tests {
        line.push_str(&format!(" max_dominance_tests={n}"));
    }
    line.push_str(&format!(" bytes={body_len}"));
    line
}

/// Validates one `FOLD` response (header payload plus `SKYSIG02` frame)
/// into a completed leg: frame checksum, key tags, signature size and
/// skyline coverage must all match the request. Shared by the blocking
/// and multiplexed fan-out paths.
#[allow(clippy::too_many_arguments)]
fn parse_fold_leg(
    header: &str,
    body: Option<Vec<u8>>,
    routing: &DatasetRouting,
    shard: usize,
    prefs_key: &str,
    t: usize,
    seed: u64,
    skyline: &[usize],
) -> Result<Leg, String> {
    let body = body.ok_or_else(|| "fold response carried no frame".to_string())?;
    let payload = frame::decode(&body).map_err(|e| e.to_string())?;
    let (fp, tags) = decode_shard_signatures(payload).map_err(|e| e.to_string())?;
    let want = [
        routing.content_hash,
        shard as u64,
        prefs_hash(prefs_key),
        seed,
    ];
    if tags != want {
        return Err("fold artefact key tags do not match the request".to_string());
    }
    if fp.t() != t || fp.columns != skyline {
        return Err("fold artefact does not cover the current skyline".to_string());
    }
    let tests = json_kv_u64(header, "tests").unwrap_or(0);
    let reused = json_kv_u64(header, "reused") == Some(1);
    let trip = match header
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("tripped="))
    {
        None | Some("none") => None,
        Some("cancelled") => Some(LegTrip::Cancelled),
        Some("deadline") => Some(LegTrip::Deadline),
        Some("dominance") => Some(LegTrip::Dominance {
            used: json_kv_u64(header, "trip_used").unwrap_or(tests),
        }),
        Some(other) => return Err(format!("unknown trip kind {other:?}")),
    };
    Ok(Leg {
        fp,
        reused,
        tests,
        trip,
    })
}

/// Fails every still-pending leg with `msg(shard)` — deadline expiry or
/// a poller breakdown ends the whole fan-out at once.
fn fail_pending(
    poller: &mut Poller,
    legs: &mut [LegState],
    metrics: &Metrics,
    msg: impl Fn(usize) -> String,
) {
    for (shard, leg) in legs.iter_mut().enumerate() {
        if leg.done.is_none() {
            if let Some(conn) = leg.conn.take() {
                let _ = poller.deregister(conn.stream.as_raw_fd());
            }
            metrics.bump(&metrics.fanout_failures);
            leg.done = Some(Err(msg(shard)));
        }
    }
}

/// Connects within the remaining shared deadline, then switches the
/// socket nonblocking for the readiness-driven exchange.
fn connect_nonblocking(addr: &str, budget: &DeadlineBudget) -> std::io::Result<TcpStream> {
    let remaining = budget.remaining().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "fan-out deadline exhausted")
    })?;
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, remaining)?;
    stream.set_nonblocking(true)?;
    stream.set_nodelay(true).ok();
    Ok(stream)
}

/// Responses the multiplexed reader will buffer a status line for; a
/// worker reply never legitimately approaches this.
const MAX_RESPONSE_LINE: usize = 1 << 20;

/// One parsed text response: the status line plus the binary body its
/// `bytes=<n>` token announced, if any.
type ResponseParts = (String, Option<Vec<u8>>);

/// Scans the buffered bytes for one complete text response (status line
/// plus the body its `bytes=<n>` token announces). `Ok(None)` means more
/// bytes are needed.
fn complete_response(rbuf: &[u8]) -> Result<Option<ResponseParts>, String> {
    let Some(nl) = rbuf.iter().position(|&b| b == b'\n') else {
        if rbuf.len() > MAX_RESPONSE_LINE {
            return Err(format!(
                "response line exceeds {MAX_RESPONSE_LINE} bytes without a newline"
            ));
        }
        return Ok(None);
    };
    let line = String::from_utf8_lossy(&rbuf[..nl]).trim_end().to_string();
    let body_len = line
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("bytes="))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0);
    if body_len > frame::MAX_FRAME_BYTES {
        return Err(format!("response frame of {body_len} bytes exceeds the cap"));
    }
    let total = nl + 1 + body_len;
    if rbuf.len() < total {
        return Ok(None);
    }
    let body = (body_len > 0).then(|| rbuf[nl + 1..total].to_vec());
    Ok(Some((line, body)))
}

/// Moves bytes for one connection after a readiness event: drains the
/// request while writable (downgrading to read-only interest once it is
/// out), then reads until the response completes or the socket would
/// block.
fn drive_conn(
    poller: &mut Poller,
    conn: &mut LegConn,
    token: u64,
    readable: bool,
    writable: bool,
    closed: bool,
) -> Drive {
    if writable && conn.wpos < conn.wbuf.len() {
        // lint: allow(R2) -- drains a bounded request buffer and exits
        // on WouldBlock; the outer fan-out loop holds the budget
        loop {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => return Drive::Failed("transport: connection closed mid-request".into()),
                Ok(n) => {
                    conn.wpos += n;
                    if conn.wpos == conn.wbuf.len() {
                        let _ = poller.modify(conn.stream.as_raw_fd(), token, Interest::READ);
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Drive::Failed(format!("transport: {e}")),
            }
        }
    }
    if readable {
        let mut chunk = [0u8; 16 * 1024];
        // lint: allow(R2) -- reads until WouldBlock/EOF or a complete
        // response; response size is capped by `complete_response`
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    return match complete_response(&conn.rbuf) {
                        Ok(Some((line, body))) => Drive::Complete(line, body),
                        Ok(None) => {
                            Drive::Failed("transport: server closed the connection".into())
                        }
                        Err(e) => Drive::Failed(e),
                    };
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&chunk[..n]);
                    match complete_response(&conn.rbuf) {
                        Ok(Some((line, body))) => return Drive::Complete(line, body),
                        Ok(None) => {}
                        Err(e) => return Drive::Failed(e),
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Drive::Failed(format!("transport: {e}")),
            }
        }
    }
    if closed && !readable {
        return Drive::Failed("transport: connection closed".into());
    }
    Drive::Pending
}

/// Connects to `addr` within the shared deadline budget, with socket
/// read/write timeouts cut to the remaining time — the satellite fix
/// for per-connection-only timeouts: K legs can never spend K × the
/// request deadline.
fn connect_deadline(addr: &str, deadline: &DeadlineBudget) -> std::io::Result<Client> {
    let remaining = deadline.remaining().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::TimedOut, "fan-out deadline exhausted")
    })?;
    let sockaddr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "bad address"))?;
    let stream = TcpStream::connect_timeout(&sockaddr, remaining)?;
    let per_io = deadline.remaining().unwrap_or(Duration::from_millis(1));
    stream.set_read_timeout(Some(per_io))?;
    stream.set_write_timeout(Some(per_io))?;
    stream.set_nodelay(true).ok();
    Client::from_stream(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> ShardHost {
        ShardHost::new(1 << 22, Arc::new(Metrics::new()), None)
    }

    fn put(h: &ShardHost, name: &str, shard: usize, base: usize, dims: usize, rows: &[f64]) {
        let body = frame::encode(&frame::encode_points(dims, rows));
        h.shardput(name, shard, base, false, &body).unwrap();
    }

    #[test]
    fn shardput_then_fold_matches_local_fold() {
        let h = host();
        // 6 rows, 2 dims; rows 2 and 4 are skyline members (toy mask).
        let rows: Vec<f64> = (0..12).map(|i| (i % 5) as f64).collect();
        put(&h, "d", 1, 10, 2, &rows);
        let payload = frame::encode_points(2, &rows);
        let shard_hash = fnv1a64(&payload);
        let ids = vec![10usize, 12];
        let cols = vec![0.0, 1.0, 2.0, 3.0];
        let body = frame::encode(&frame::encode_fold_request(2, &ids, &cols));
        let cancel = CancelToken::new();
        let (header, frame_bytes) = h
            .fold(
                "d", 7, 1, shard_hash, "min,min", 16, 3, None, None, &body, &cancel,
            )
            .unwrap();
        assert!(header.contains("tripped=none"), "{header}");
        let decoded = frame::decode(&frame_bytes).unwrap();
        let (fp, tags) = decode_shard_signatures(decoded).unwrap();
        assert_eq!(tags[0], 7);
        assert_eq!(fp.columns, ids);

        // Local truth: same fold via the shared core path.
        let data = Dataset::from_flat(2, rows.clone());
        let prefs = Preference::all_min(2);
        let canon = canonicalise(&data, &prefs).unwrap();
        let family = HashFamily::new(16, 3);
        let ctx = ExecContext::new(RunBudget::none().with_max_dominance_tests(u64::MAX));
        let view = DatasetView::with_base(canon.as_ref(), 10);
        let skip = vec![true, false, true, false, false, false];
        let col_refs: Vec<&[f64]> = cols.chunks(2).collect();
        let ShardFold::Scanned { acc, .. } =
            fold_shard(view, &ids, &col_refs, &skip, &family, None, 1, &ctx)
        else {
            panic!("expected a scan");
        };
        assert_eq!(fp.acc.matrix, acc.matrix);
        assert_eq!(fp.acc.scores, acc.scores);
    }

    #[test]
    fn fold_rejects_stale_generation() {
        let h = host();
        let rows = vec![1.0, 2.0, 3.0, 4.0];
        put(&h, "d", 0, 0, 2, &rows);
        let ids = vec![0usize];
        let body = frame::encode(&frame::encode_fold_request(2, &ids, &[1.0, 2.0]));
        let cancel = CancelToken::new();
        let err = h
            .fold(
                "d",
                1,
                0,
                0xdead_beef,
                "min,min",
                8,
                0,
                None,
                None,
                &body,
                &cancel,
            )
            .unwrap_err();
        assert!(err.contains("stale"), "{err}");
    }

    #[test]
    fn replace_clears_previous_generation() {
        let h = host();
        put(&h, "d", 0, 0, 2, &[1.0, 2.0]);
        put(&h, "d", 1, 1, 2, &[3.0, 4.0]);
        assert_eq!(h.hosted_counts(), (1, 2));
        let body = frame::encode(&frame::encode_points(2, &[9.0, 9.0]));
        h.shardput("d", 0, 0, true, &body).unwrap();
        assert_eq!(h.hosted_counts(), (1, 1), "replace drops the old shards");
    }

    #[test]
    fn fetch_misses_cleanly_without_artefacts() {
        let h = host();
        let (header, body) = h.fetch("ghost", 1, 0, "min,min", 8, 0).unwrap();
        assert_eq!(header, "found=0");
        assert!(body.is_none());
    }

    #[test]
    fn header_kv_parser_reads_u64s() {
        assert_eq!(json_kv_u64("reused=1 tests=42 bytes=7", "tests"), Some(42));
        assert_eq!(json_kv_u64("reused=1", "tests"), None);
    }
}
