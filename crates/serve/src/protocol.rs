//! The line-delimited wire protocol.
//!
//! Every request and every response is one `\n`-terminated line of
//! UTF-8. A request is a verb followed by `key=value` pairs in any
//! order; a response starts with `OK` (optionally followed by a
//! payload, which for `QUERY` and `STATS` is a one-line JSON object) or
//! `ERR ` followed by a human-readable message.
//!
//! ```text
//! LOAD name=<id> path=<file.csv|.sky> [prefs=min,max,...]
//! APPEND name=<id> path=<file.csv|.sky>
//! QUERY dataset=<id> k=<k> [method=mh|lsh|greedy] [t=<t>] [seed=<s>]
//!       [xi=<f>] [buckets=<b>] [prefs=min,max,...]
//!       [timeout_ms=<ms>] [max_dominance_tests=<n>]
//! BATCH dataset=<id> specs=<k>:<method>[:<xi>:<buckets>][,<k>:<method>...]
//!       [t=<t>] [seed=<s>] [prefs=min,max,...]
//!       [timeout_ms=<ms>] [max_dominance_tests=<n>]
//! HELLO proto=SKYWIRE01
//! STATS
//! SNAPSHOT
//! RESTORE
//! SHUTDOWN
//! JOIN addr=<host:port>
//! LEAVE addr=<host:port>
//! SHARDPUT name=<id> shard=<i> base=<row> replace=<0|1> bytes=<n>
//! FOLD dataset=<id> hash=<u64> shard=<i> shard_hash=<u64>
//!      prefs=min,max,... t=<t> seed=<s> [max_dominance_tests=<n>]
//!      [timeout_ms=<ms>] bytes=<n>
//! FETCH name=<id> hash=<u64> shard=<i> prefs=min,max,... t=<t> seed=<s>
//! REPLICATE name=<id> hash=<u64> shard=<i> prefs=min,max,... t=<t>
//!           seed=<s> from=<host:port>
//! ```
//!
//! Unknown verbs and unknown or malformed `key=value` pairs are
//! rejected with `ERR` — the protocol mirrors the CLI's strict flag
//! policy so a misspelled parameter can never be silently ignored.
//!
//! **Cluster verbs.** `JOIN`/`LEAVE` edit a coordinator's worker roster
//! (plain text, coordinator-only). `SHARDPUT`, `FOLD`, `FETCH` and
//! `REPLICATE` are the worker-side data plane: a request whose line
//! carries a `bytes=<n>` token is followed by exactly `n` raw bytes — a
//! length-prefixed, FNV-1a-checksummed frame (see
//! `skydiver_cluster::frame`) — and a response payload carrying
//! `bytes=<n>` is likewise followed by `n` raw frame bytes. `SHARDPUT`
//! ships one shard's rows to an owner (`replace=1` drops the worker's
//! previous shards of that dataset first — a new `LOAD` generation);
//! `FOLD` asks the owner to fold its shard against the coordinator's
//! shipped skyline columns and return the fold as a `SKYSIG02` frame;
//! `FETCH` serves a cached fold artefact (the replication transport);
//! `REPLICATE` asks a worker to pull one artefact from a peer.
//!
//! **`LOAD` semantics**: loading under an already-registered name
//! *replaces* that dataset — the name now denotes exactly the new
//! file's points, and every cached fingerprint artefact keyed to the
//! old data is invalidated. Reusing a name never serves stale results.
//!
//! **`APPEND` semantics**: `APPEND` adds the file's points to an
//! already-registered dataset as one new *shard*; existing rows keep
//! their ids and new rows are numbered after them, exactly as if the
//! file had been concatenated onto the original `LOAD`. The appended
//! file must match the dataset's dimensionality and be non-empty.
//! Unlike `LOAD`, cached per-shard fingerprints stay valid, so the next
//! query re-scans only the new shard (plus old shards for any newly
//! exposed skyline columns) and merges the rest from the cache. Replies
//! `OK dataset=<id> points=<n> dims=<d> shards=<s> appended=<a>`.
//!
//! **`BATCH` semantics**: one fingerprint resolution, many selections.
//! Every item in `specs` shares the request's `(dataset, prefs, t,
//! seed)` — exactly the fingerprint cache key — so the server resolves
//! the signature matrix once and runs each `(k, method)` selection
//! against it. Methods are restricted to `mh` and `lsh` (`greedy`
//! bypasses the fingerprint and would defeat the amortisation). A spec
//! token is `k:method`, with LSH optionally carrying its parameters as
//! `k:lsh:<xi>:<buckets>`. The reply is one JSON object whose
//! `results` array holds, in spec order, objects **byte-identical** to
//! what the equivalent sequence of `QUERY` lines would have produced
//! on a fresh connection.
//!
//! **`HELLO` / binary framing**: `HELLO proto=SKYWIRE01` switches the
//! connection to the length-prefixed binary framing — the server
//! replies `OK proto=SKYWIRE01` in plain text, and every subsequent
//! request and response on that connection (in both directions) is one
//! frame: `[u64 LE payload length][payload][u64 LE FNV-1a of payload]`
//! (the `skydiver_cluster::frame` codec from the cluster data plane).
//! The frame payload is exactly the text-protocol bytes — the request
//! or response line without its trailing newline, plus `\n` and the
//! raw body when the line carries `bytes=<n>` — so text and binary
//! replies are bit-identical by construction and the framing composes
//! with pipelining (frames are self-delimiting).
//!
//! **`SNAPSHOT` / `RESTORE` semantics** (require a server started with
//! a store directory): `SNAPSHOT` drains the write-behind queue so
//! every completed fingerprint is durable on disk, replying
//! `OK persisted=<n>` with the total artefacts persisted since the
//! store opened. `RESTORE` re-runs the recovery sweep — every on-disk
//! artefact is re-validated and corrupt or mis-keyed ones are moved to
//! quarantine — replying `OK artifacts=<valid> quarantined=<q>
//! removed_temps=<r>`. Without a store both reply `ERR no store
//! configured`.

use std::fmt;

/// Default signature size `t` when a `QUERY` omits it (the paper's
/// default).
pub const DEFAULT_T: usize = 100;
/// Default LSH similarity threshold `ξ`.
pub const DEFAULT_XI: f64 = 0.2;
/// Default LSH buckets per zone.
pub const DEFAULT_BUCKETS: usize = 20;
/// Protocol token a `HELLO` must carry to switch a connection to the
/// length-prefixed binary framing.
pub const WIRE_PROTO: &str = "SKYWIRE01";

/// Phase-2 flavour a `QUERY` asks for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Method {
    /// Greedy dispersion over cached MinHash signatures (default).
    MinHash,
    /// Greedy dispersion over LSH bucket bit-vectors built from the
    /// cached signatures.
    Lsh {
        /// Similarity threshold `ξ`.
        xi: f64,
        /// Buckets per zone.
        buckets: usize,
    },
    /// Exact greedy baseline: dispersion over exact dominated-set
    /// Jaccard distances (no signatures, never cached).
    Greedy,
}

impl Method {
    /// Protocol token for this method.
    pub fn token(&self) -> &'static str {
        match self {
            Method::MinHash => "mh",
            Method::Lsh { .. } => "lsh",
            Method::Greedy => "greedy",
        }
    }
}

/// A parsed `QUERY` request.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Registry name of the dataset to query.
    pub dataset: String,
    /// Number of diverse points requested.
    pub k: usize,
    /// Selection method.
    pub method: Method,
    /// Signature size `t` (cache-key component).
    pub t: usize,
    /// Hash-family seed (cache-key component).
    pub seed: u64,
    /// Preference spec (`min,max,...`); `None` means all-min.
    pub prefs: Option<String>,
    /// Per-request wall-clock budget.
    pub timeout_ms: Option<u64>,
    /// Per-request dominance-test budget.
    pub max_dominance_tests: Option<u64>,
}

impl QuerySpec {
    /// A spec with the protocol defaults for `dataset` and `k`.
    pub fn new(dataset: impl Into<String>, k: usize) -> Self {
        QuerySpec {
            dataset: dataset.into(),
            k,
            method: Method::MinHash,
            t: DEFAULT_T,
            seed: 0,
            prefs: None,
            timeout_ms: None,
            max_dominance_tests: None,
        }
    }

    /// Renders the spec as a wire-format `QUERY` line (no newline).
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "QUERY dataset={} k={} method={} t={} seed={}",
            self.dataset,
            self.k,
            self.method.token(),
            self.t,
            self.seed
        );
        if let Method::Lsh { xi, buckets } = self.method {
            line.push_str(&format!(" xi={xi} buckets={buckets}"));
        }
        if let Some(p) = &self.prefs {
            line.push_str(&format!(" prefs={p}"));
        }
        if let Some(ms) = self.timeout_ms {
            line.push_str(&format!(" timeout_ms={ms}"));
        }
        if let Some(n) = self.max_dominance_tests {
            line.push_str(&format!(" max_dominance_tests={n}"));
        }
        line
    }
}

/// A parsed `BATCH` request: one fingerprint resolution shared by many
/// `(k, method)` selections.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSpec {
    /// Registry name of the dataset to query.
    pub dataset: String,
    /// The `(k, method)` selections to run, in reply order. Methods
    /// are `mh`/`lsh` only — `greedy` has no shared fingerprint.
    pub items: Vec<(usize, Method)>,
    /// Signature size `t` (cache-key component, shared by all items).
    pub t: usize,
    /// Hash-family seed (cache-key component, shared by all items).
    pub seed: u64,
    /// Preference spec (`min,max,...`); `None` means all-min.
    pub prefs: Option<String>,
    /// Wall-clock budget for the whole batch.
    pub timeout_ms: Option<u64>,
    /// Dominance-test budget for the whole batch.
    pub max_dominance_tests: Option<u64>,
}

impl BatchSpec {
    /// A batch with the protocol defaults, mirroring [`QuerySpec::new`].
    pub fn new(dataset: impl Into<String>, items: Vec<(usize, Method)>) -> Self {
        BatchSpec {
            dataset: dataset.into(),
            items,
            t: DEFAULT_T,
            seed: 0,
            prefs: None,
            timeout_ms: None,
            max_dominance_tests: None,
        }
    }

    /// Renders the batch as a wire-format `BATCH` line (no newline).
    pub fn to_line(&self) -> String {
        let specs: Vec<String> = self
            .items
            .iter()
            .map(|(k, m)| match m {
                Method::Lsh { xi, buckets } => format!("{k}:lsh:{xi}:{buckets}"),
                other => format!("{k}:{}", other.token()),
            })
            .collect();
        let mut line = format!(
            "BATCH dataset={} specs={} t={} seed={}",
            self.dataset,
            specs.join(","),
            self.t,
            self.seed
        );
        if let Some(p) = &self.prefs {
            line.push_str(&format!(" prefs={p}"));
        }
        if let Some(ms) = self.timeout_ms {
            line.push_str(&format!(" timeout_ms={ms}"));
        }
        if let Some(n) = self.max_dominance_tests {
            line.push_str(&format!(" max_dominance_tests={n}"));
        }
        line
    }

    /// The equivalent stand-alone `QUERY` specs, in item order — the
    /// batch contract is that `results[i]` is byte-identical to what
    /// `queries()[i]` would return.
    pub fn queries(&self) -> Vec<QuerySpec> {
        self.items
            .iter()
            .map(|&(k, method)| QuerySpec {
                dataset: self.dataset.clone(),
                k,
                method,
                t: self.t,
                seed: self.seed,
                prefs: self.prefs.clone(),
                timeout_ms: self.timeout_ms,
                max_dominance_tests: self.max_dominance_tests,
            })
            .collect()
    }
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Load a dataset file into the registry under a name, replacing
    /// (and cache-invalidating) any previous dataset of that name.
    Load {
        /// Registry name.
        name: String,
        /// CSV (or `.sky` binary) file path on the server host.
        path: String,
    },
    /// Append a dataset file to an existing dataset as one new shard,
    /// keeping every existing row id (and cached shard fold) valid.
    Append {
        /// Registry name of the dataset to grow.
        name: String,
        /// CSV (or `.sky` binary) file path on the server host.
        path: String,
    },
    /// Answer a diversification query.
    Query(QuerySpec),
    /// Answer many selections against one shared fingerprint.
    Batch(BatchSpec),
    /// Switch this connection to the binary framing (`SKYWIRE01`).
    Hello {
        /// Requested protocol token; only [`WIRE_PROTO`] is accepted.
        proto: String,
    },
    /// Report the metrics snapshot.
    Stats,
    /// Flush the write-behind signature store to disk.
    Snapshot,
    /// Re-run the store's recovery sweep (re-validate every artefact).
    Restore,
    /// Stop accepting connections and exit after draining.
    Shutdown,
    /// Coordinator only: add a worker to the roster and hand shards off
    /// to it.
    Join {
        /// Worker address (`host:port`).
        addr: String,
    },
    /// Coordinator only: retire a worker and reassign its shards.
    Leave {
        /// Worker address (`host:port`).
        addr: String,
    },
    /// Install one shard of a dataset on this worker (the request line
    /// is followed by `bytes` raw bytes: a frame wrapping the points
    /// payload).
    ShardPut {
        /// Dataset name.
        name: String,
        /// Shard index.
        shard: usize,
        /// Global id of the shard's first row.
        base: usize,
        /// Drop every previously hosted shard of `name` first.
        replace: bool,
        /// Raw body length following the line.
        bytes: usize,
    },
    /// Fold a hosted shard against the shipped skyline columns (the
    /// request line is followed by `bytes` raw bytes: a frame wrapping
    /// the fold-request payload).
    Fold {
        /// Dataset name.
        dataset: String,
        /// Coordinator's content hash of the whole dataset generation.
        hash: u64,
        /// Shard index.
        shard: usize,
        /// Expected content tag of the hosted shard's points payload.
        shard_hash: u64,
        /// Canonical preference spec (`min,max,...`).
        prefs: String,
        /// Signature size.
        t: usize,
        /// Hash-family seed.
        seed: u64,
        /// Remaining dominance-test budget forwarded by the coordinator.
        max_dominance_tests: Option<u64>,
        /// Remaining wall-clock budget forwarded by the coordinator.
        timeout_ms: Option<u64>,
        /// Raw body length following the line.
        bytes: usize,
    },
    /// Serve a cached fold artefact as a `SKYSIG02` frame.
    Fetch {
        /// Dataset name.
        name: String,
        /// Content hash of the dataset generation.
        hash: u64,
        /// Shard index.
        shard: usize,
        /// Canonical preference spec.
        prefs: String,
        /// Signature size.
        t: usize,
        /// Hash-family seed.
        seed: u64,
    },
    /// Pull one fold artefact from a peer (`FETCH`) and install it.
    Replicate {
        /// Dataset name.
        name: String,
        /// Content hash of the dataset generation.
        hash: u64,
        /// Shard index.
        shard: usize,
        /// Canonical preference spec.
        prefs: String,
        /// Signature size.
        t: usize,
        /// Hash-family seed.
        seed: u64,
        /// Peer address to pull from.
        from: String,
    },
}

impl Request {
    /// Raw bytes that follow the request line, if this verb carries a
    /// binary body. The server reads exactly this many bytes off the
    /// connection before dispatching.
    pub fn body_bytes(&self) -> Option<usize> {
        match self {
            Request::ShardPut { bytes, .. } | Request::Fold { bytes, .. } => Some(*bytes),
            _ => None,
        }
    }
}

/// A protocol-level parse failure (reported as an `ERR` line).
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

/// Splits `key=value` tokens, rejecting anything else.
fn pairs(tokens: &[&str]) -> Result<Vec<(String, String)>, ParseError> {
    tokens
        .iter()
        .map(|tok| {
            tok.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| bad(format!("expected key=value, got {tok:?}")))
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| bad(format!("invalid {key}={value:?}")))
}

/// Parses one request line. The verb is case-insensitive; keys are not.
pub fn parse_request(line: &str) -> Result<Request, ParseError> {
    let mut tokens = line.split_whitespace();
    let verb = tokens.next().ok_or_else(|| bad("empty request"))?;
    let rest: Vec<&str> = tokens.collect();
    match verb.to_ascii_uppercase().as_str() {
        verb @ ("LOAD" | "APPEND") => {
            let (mut name, mut path) = (None, None);
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "name" => name = Some(v),
                    "path" => path = Some(v),
                    other => return Err(bad(format!("unknown {verb} key {other:?}"))),
                }
            }
            let name = name.ok_or_else(|| bad(format!("{verb} requires name=<id>")))?;
            let path = path.ok_or_else(|| bad(format!("{verb} requires path=<file>")))?;
            Ok(if verb == "LOAD" {
                Request::Load { name, path }
            } else {
                Request::Append { name, path }
            })
        }
        "QUERY" => {
            let mut dataset = None;
            let mut k = None;
            let mut method = "mh".to_string();
            let mut t = DEFAULT_T;
            let mut seed = 0u64;
            let mut xi = DEFAULT_XI;
            let mut buckets = DEFAULT_BUCKETS;
            let mut prefs = None;
            let mut timeout_ms = None;
            let mut max_dominance_tests = None;
            for (key, v) in pairs(&rest)? {
                match key.as_str() {
                    "dataset" => dataset = Some(v),
                    "k" => k = Some(parse_num("k", &v)?),
                    "method" => method = v,
                    "t" => t = parse_num("t", &v)?,
                    "seed" => seed = parse_num("seed", &v)?,
                    "xi" => xi = parse_num("xi", &v)?,
                    "buckets" => buckets = parse_num("buckets", &v)?,
                    "prefs" => prefs = Some(v),
                    "timeout_ms" => timeout_ms = Some(parse_num("timeout_ms", &v)?),
                    "max_dominance_tests" => {
                        max_dominance_tests = Some(parse_num("max_dominance_tests", &v)?)
                    }
                    other => return Err(bad(format!("unknown QUERY key {other:?}"))),
                }
            }
            let method = match method.as_str() {
                "mh" => Method::MinHash,
                "lsh" => Method::Lsh { xi, buckets },
                "greedy" => Method::Greedy,
                other => return Err(bad(format!("unknown method {other:?} (mh|lsh|greedy)"))),
            };
            Ok(Request::Query(QuerySpec {
                dataset: dataset.ok_or_else(|| bad("QUERY requires dataset=<id>"))?,
                k: k.ok_or_else(|| bad("QUERY requires k=<k>"))?,
                method,
                t,
                seed,
                prefs,
                timeout_ms,
                max_dominance_tests,
            }))
        }
        "BATCH" => {
            let mut dataset = None;
            let mut specs = None;
            let mut t = DEFAULT_T;
            let mut seed = 0u64;
            let mut prefs = None;
            let mut timeout_ms = None;
            let mut max_dominance_tests = None;
            for (key, v) in pairs(&rest)? {
                match key.as_str() {
                    "dataset" => dataset = Some(v),
                    "specs" => specs = Some(v),
                    "t" => t = parse_num("t", &v)?,
                    "seed" => seed = parse_num("seed", &v)?,
                    "prefs" => prefs = Some(v),
                    "timeout_ms" => timeout_ms = Some(parse_num("timeout_ms", &v)?),
                    "max_dominance_tests" => {
                        max_dominance_tests = Some(parse_num("max_dominance_tests", &v)?)
                    }
                    other => return Err(bad(format!("unknown BATCH key {other:?}"))),
                }
            }
            let specs = specs.ok_or_else(|| bad("BATCH requires specs=<k>:<method>[,...]"))?;
            let mut items = Vec::new();
            for tok in specs.split(',') {
                let parts: Vec<&str> = tok.split(':').collect();
                let (k_str, m_str, lsh_params) = match parts.as_slice() {
                    [k, m] => (*k, *m, None),
                    [k, m, xi, buckets] => (*k, *m, Some((*xi, *buckets))),
                    _ => {
                        return Err(bad(format!(
                            "invalid spec {tok:?} (want k:mh, k:lsh, or k:lsh:xi:buckets)"
                        )))
                    }
                };
                let k: usize = parse_num("spec k", k_str)?;
                let method = match (m_str, lsh_params) {
                    ("mh", None) => Method::MinHash,
                    ("lsh", None) => Method::Lsh {
                        xi: DEFAULT_XI,
                        buckets: DEFAULT_BUCKETS,
                    },
                    ("lsh", Some((xi, buckets))) => Method::Lsh {
                        xi: parse_num("spec xi", xi)?,
                        buckets: parse_num("spec buckets", buckets)?,
                    },
                    ("greedy", _) => {
                        return Err(bad(
                            "BATCH methods are mh|lsh (greedy has no shared fingerprint)",
                        ))
                    }
                    (other, _) => {
                        return Err(bad(format!("unknown spec method {other:?} (mh|lsh)")))
                    }
                };
                items.push((k, method));
            }
            Ok(Request::Batch(BatchSpec {
                dataset: dataset.ok_or_else(|| bad("BATCH requires dataset=<id>"))?,
                items,
                t,
                seed,
                prefs,
                timeout_ms,
                max_dominance_tests,
            }))
        }
        "HELLO" => {
            let mut proto = None;
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "proto" => proto = Some(v),
                    other => return Err(bad(format!("unknown HELLO key {other:?}"))),
                }
            }
            Ok(Request::Hello {
                proto: proto.ok_or_else(|| bad(format!("HELLO requires proto={WIRE_PROTO}")))?,
            })
        }
        "STATS" => {
            if !rest.is_empty() {
                return Err(bad("STATS takes no arguments"));
            }
            Ok(Request::Stats)
        }
        "SNAPSHOT" => {
            if !rest.is_empty() {
                return Err(bad("SNAPSHOT takes no arguments"));
            }
            Ok(Request::Snapshot)
        }
        "RESTORE" => {
            if !rest.is_empty() {
                return Err(bad("RESTORE takes no arguments"));
            }
            Ok(Request::Restore)
        }
        "SHUTDOWN" => {
            if !rest.is_empty() {
                return Err(bad("SHUTDOWN takes no arguments"));
            }
            Ok(Request::Shutdown)
        }
        verb @ ("JOIN" | "LEAVE") => {
            let mut addr = None;
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "addr" => addr = Some(v),
                    other => return Err(bad(format!("unknown {verb} key {other:?}"))),
                }
            }
            let addr = addr.ok_or_else(|| bad(format!("{verb} requires addr=<host:port>")))?;
            Ok(if verb == "JOIN" {
                Request::Join { addr }
            } else {
                Request::Leave { addr }
            })
        }
        // lint: allow(R9) -- worker-internal placement verb sent by the coordinator; exercised end-to-end via tests/sharding.rs, not part of the public README contract
        "SHARDPUT" => {
            let (mut name, mut shard, mut base, mut replace, mut bytes) =
                (None, None, None, false, None);
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "name" => name = Some(v),
                    "shard" => shard = Some(parse_num("shard", &v)?),
                    "base" => base = Some(parse_num("base", &v)?),
                    "replace" => replace = parse_num::<u8>("replace", &v)? != 0,
                    "bytes" => bytes = Some(parse_num("bytes", &v)?),
                    other => return Err(bad(format!("unknown SHARDPUT key {other:?}"))),
                }
            }
            Ok(Request::ShardPut {
                name: name.ok_or_else(|| bad("SHARDPUT requires name=<id>"))?,
                shard: shard.ok_or_else(|| bad("SHARDPUT requires shard=<i>"))?,
                base: base.ok_or_else(|| bad("SHARDPUT requires base=<row>"))?,
                replace,
                bytes: bytes.ok_or_else(|| bad("SHARDPUT requires bytes=<n>"))?,
            })
        }
        "FOLD" => {
            let mut dataset = None;
            let mut hash = None;
            let mut shard = None;
            let mut shard_hash = None;
            let mut prefs = None;
            let mut t = None;
            let mut seed = None;
            let mut max_dominance_tests = None;
            let mut timeout_ms = None;
            let mut bytes = None;
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "dataset" => dataset = Some(v),
                    "hash" => hash = Some(parse_num("hash", &v)?),
                    "shard" => shard = Some(parse_num("shard", &v)?),
                    "shard_hash" => shard_hash = Some(parse_num("shard_hash", &v)?),
                    "prefs" => prefs = Some(v),
                    "t" => t = Some(parse_num("t", &v)?),
                    "seed" => seed = Some(parse_num("seed", &v)?),
                    "max_dominance_tests" => {
                        max_dominance_tests = Some(parse_num("max_dominance_tests", &v)?)
                    }
                    "timeout_ms" => timeout_ms = Some(parse_num("timeout_ms", &v)?),
                    "bytes" => bytes = Some(parse_num("bytes", &v)?),
                    other => return Err(bad(format!("unknown FOLD key {other:?}"))),
                }
            }
            Ok(Request::Fold {
                dataset: dataset.ok_or_else(|| bad("FOLD requires dataset=<id>"))?,
                hash: hash.ok_or_else(|| bad("FOLD requires hash=<u64>"))?,
                shard: shard.ok_or_else(|| bad("FOLD requires shard=<i>"))?,
                shard_hash: shard_hash.ok_or_else(|| bad("FOLD requires shard_hash=<u64>"))?,
                prefs: prefs.ok_or_else(|| bad("FOLD requires prefs=<spec>"))?,
                t: t.ok_or_else(|| bad("FOLD requires t=<t>"))?,
                seed: seed.ok_or_else(|| bad("FOLD requires seed=<s>"))?,
                max_dominance_tests,
                timeout_ms,
                bytes: bytes.ok_or_else(|| bad("FOLD requires bytes=<n>"))?,
            })
        }
        // lint: allow(R9) -- worker-internal replication verbs; exercised end-to-end via tests/sharding.rs, not part of the public README contract
        verb @ ("FETCH" | "REPLICATE") => {
            let mut name = None;
            let mut hash = None;
            let mut shard = None;
            let mut prefs = None;
            let mut t = None;
            let mut seed = None;
            let mut from = None;
            for (k, v) in pairs(&rest)? {
                match k.as_str() {
                    "name" => name = Some(v),
                    "hash" => hash = Some(parse_num("hash", &v)?),
                    "shard" => shard = Some(parse_num("shard", &v)?),
                    "prefs" => prefs = Some(v),
                    "t" => t = Some(parse_num("t", &v)?),
                    "seed" => seed = Some(parse_num("seed", &v)?),
                    "from" if verb == "REPLICATE" => from = Some(v),
                    other => return Err(bad(format!("unknown {verb} key {other:?}"))),
                }
            }
            let name = name.ok_or_else(|| bad(format!("{verb} requires name=<id>")))?;
            let hash = hash.ok_or_else(|| bad(format!("{verb} requires hash=<u64>")))?;
            let shard = shard.ok_or_else(|| bad(format!("{verb} requires shard=<i>")))?;
            let prefs = prefs.ok_or_else(|| bad(format!("{verb} requires prefs=<spec>")))?;
            let t = t.ok_or_else(|| bad(format!("{verb} requires t=<t>")))?;
            let seed = seed.ok_or_else(|| bad(format!("{verb} requires seed=<s>")))?;
            Ok(if verb == "FETCH" {
                Request::Fetch {
                    name,
                    hash,
                    shard,
                    prefs,
                    t,
                    seed,
                }
            } else {
                Request::Replicate {
                    name,
                    hash,
                    shard,
                    prefs,
                    t,
                    seed,
                    from: from.ok_or_else(|| bad("REPLICATE requires from=<host:port>"))?,
                }
            })
        }
        other => Err(bad(format!(
            "unknown verb {other:?} (LOAD|APPEND|QUERY|BATCH|HELLO|STATS|SNAPSHOT|RESTORE|\
             SHUTDOWN|JOIN|LEAVE|SHARDPUT|FOLD|FETCH|REPLICATE)"
        ))),
    }
}

/// Splits a response line into `Ok(payload)` / `Err(message)`.
pub fn parse_response(line: &str) -> Result<String, String> {
    if let Some(rest) = line.strip_prefix("OK") {
        Ok(rest.trim_start().to_string())
    } else if let Some(rest) = line.strip_prefix("ERR") {
        Err(rest.trim_start().to_string())
    } else {
        Err(format!("malformed response line {line:?}"))
    }
}

// ---------------------------------------------------------------------
// Minimal hand-rolled JSON field extraction (the build is offline — no
// serde). Good enough for the flat one-line objects this protocol emits.
// ---------------------------------------------------------------------

fn field_start<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    Some(json[at + needle.len()..].trim_start())
}

/// Extracts a numeric field (`"key": 12.5`) from a flat JSON object.
pub fn json_f64(json: &str, key: &str) -> Option<f64> {
    let rest = field_start(json, key)?;
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts an unsigned integer field from a flat JSON object.
pub fn json_u64(json: &str, key: &str) -> Option<u64> {
    let rest = field_start(json, key)?;
    let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Extracts a boolean field from a flat JSON object.
pub fn json_bool(json: &str, key: &str) -> Option<bool> {
    let rest = field_start(json, key)?;
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extracts an array of unsigned integers (`"key":[1,2,3]`).
pub fn json_u64_array(json: &str, key: &str) -> Option<Vec<u64>> {
    let rest = field_start(json, key)?;
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(vec![]);
    }
    body.split(',').map(|v| v.trim().parse().ok()).collect()
}

/// Escapes a string for embedding in a JSON value.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_query() {
        let r = parse_request("QUERY dataset=hotels k=5").unwrap();
        let Request::Query(q) = r else {
            panic!("not a query")
        };
        assert_eq!(q.dataset, "hotels");
        assert_eq!(q.k, 5);
        assert_eq!(q.method, Method::MinHash);
        assert_eq!(q.t, DEFAULT_T);
    }

    #[test]
    fn query_round_trips_through_to_line() {
        let mut q = QuerySpec::new("d", 4);
        q.method = Method::Lsh {
            xi: 0.3,
            buckets: 8,
        };
        q.timeout_ms = Some(250);
        let Request::Query(back) = parse_request(&q.to_line()).unwrap() else {
            panic!("not a query");
        };
        assert_eq!(back, q);
    }

    #[test]
    fn rejects_unknown_keys_and_verbs() {
        assert!(parse_request("QUERY dataset=d k=3 kk=4").is_err());
        assert!(parse_request("FROBNICATE").is_err());
        assert!(parse_request("QUERY dataset=d k=notanumber").is_err());
        assert!(parse_request("QUERY dataset=d k=3 method=magic").is_err());
        assert!(parse_request("STATS now").is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn snapshot_and_restore_parse_bare() {
        assert_eq!(parse_request("SNAPSHOT").unwrap(), Request::Snapshot);
        assert_eq!(parse_request("restore").unwrap(), Request::Restore);
        assert!(parse_request("SNAPSHOT now").is_err());
        assert!(parse_request("RESTORE path=/x").is_err());
    }

    #[test]
    fn load_requires_name_and_path() {
        assert!(parse_request("LOAD name=x").is_err());
        let r = parse_request("load name=x path=/tmp/x.csv").unwrap();
        assert_eq!(
            r,
            Request::Load {
                name: "x".into(),
                path: "/tmp/x.csv".into()
            }
        );
    }

    #[test]
    fn append_parses_like_load() {
        assert!(parse_request("APPEND name=x").is_err());
        assert!(parse_request("APPEND path=/tmp/x.csv").is_err());
        assert!(parse_request("APPEND name=x path=/tmp/x.csv nope=1").is_err());
        let r = parse_request("append name=x path=/tmp/x.csv").unwrap();
        assert_eq!(
            r,
            Request::Append {
                name: "x".into(),
                path: "/tmp/x.csv".into()
            }
        );
    }

    #[test]
    fn cluster_verbs_parse_strictly() {
        assert_eq!(
            parse_request("JOIN addr=127.0.0.1:9001").unwrap(),
            Request::Join {
                addr: "127.0.0.1:9001".into()
            }
        );
        assert_eq!(
            parse_request("leave addr=w1:9001").unwrap(),
            Request::Leave {
                addr: "w1:9001".into()
            }
        );
        assert!(parse_request("JOIN").is_err());
        assert!(parse_request("JOIN addr=x extra=1").is_err());

        let r = parse_request("SHARDPUT name=d shard=2 base=100 replace=1 bytes=64").unwrap();
        assert_eq!(
            r,
            Request::ShardPut {
                name: "d".into(),
                shard: 2,
                base: 100,
                replace: true,
                bytes: 64
            }
        );
        assert_eq!(r.body_bytes(), Some(64));
        assert!(
            parse_request("SHARDPUT name=d shard=2 base=0").is_err(),
            "bytes required"
        );

        let r = parse_request(
            "FOLD dataset=d hash=7 shard=1 shard_hash=9 prefs=min,max t=32 seed=3 \
             max_dominance_tests=100 timeout_ms=250 bytes=16",
        )
        .unwrap();
        let Request::Fold {
            dataset,
            hash,
            shard_hash,
            max_dominance_tests,
            bytes,
            ..
        } = &r
        else {
            panic!("not a fold");
        };
        assert_eq!((dataset.as_str(), *hash, *shard_hash), ("d", 7, 9));
        assert_eq!(*max_dominance_tests, Some(100));
        assert_eq!(*bytes, 16);
        assert_eq!(r.body_bytes(), Some(16));
        assert!(parse_request("FOLD dataset=d hash=7 shard=1 bytes=16").is_err());

        let r = parse_request("FETCH name=d hash=7 shard=0 prefs=min t=8 seed=0").unwrap();
        assert_eq!(r.body_bytes(), None);
        assert!(matches!(r, Request::Fetch { .. }));
        assert!(
            parse_request("FETCH name=d hash=7 shard=0 prefs=min t=8 seed=0 from=w").is_err(),
            "from is REPLICATE-only"
        );
        let r =
            parse_request("REPLICATE name=d hash=7 shard=0 prefs=min t=8 seed=0 from=w:1").unwrap();
        assert!(matches!(r, Request::Replicate { ref from, .. } if from == "w:1"));
        assert!(parse_request("REPLICATE name=d hash=7 shard=0 prefs=min t=8 seed=0").is_err());
    }

    #[test]
    fn batch_parses_and_round_trips() {
        let r = parse_request("BATCH dataset=d specs=3:mh,5:lsh,7:lsh:0.3:8 t=64 seed=9").unwrap();
        let Request::Batch(b) = r else {
            panic!("not a batch");
        };
        assert_eq!(b.dataset, "d");
        assert_eq!(b.t, 64);
        assert_eq!(b.seed, 9);
        assert_eq!(
            b.items,
            vec![
                (3, Method::MinHash),
                (
                    5,
                    Method::Lsh {
                        xi: DEFAULT_XI,
                        buckets: DEFAULT_BUCKETS
                    }
                ),
                (
                    7,
                    Method::Lsh {
                        xi: 0.3,
                        buckets: 8
                    }
                ),
            ]
        );
        // to_line round-trips (lsh always rendered with explicit params).
        let Request::Batch(back) = parse_request(&b.to_line()).unwrap() else {
            panic!("not a batch");
        };
        assert_eq!(back, b);
        // queries() mirrors the shared key into each item.
        let qs = b.queries();
        assert_eq!(qs.len(), 3);
        assert!(qs.iter().all(|q| q.dataset == "d" && q.t == 64 && q.seed == 9));
        assert_eq!(qs[0].k, 3);
    }

    #[test]
    fn batch_rejects_greedy_and_malformed_specs() {
        assert!(parse_request("BATCH dataset=d specs=3:greedy").is_err());
        assert!(parse_request("BATCH dataset=d specs=3").is_err());
        assert!(parse_request("BATCH dataset=d specs=3:lsh:0.3").is_err());
        assert!(parse_request("BATCH dataset=d specs=x:mh").is_err());
        assert!(parse_request("BATCH dataset=d").is_err());
        assert!(parse_request("BATCH specs=3:mh").is_err());
        assert!(parse_request("BATCH dataset=d specs=3:mh nope=1").is_err());
    }

    #[test]
    fn hello_parses_strictly() {
        assert_eq!(
            parse_request("HELLO proto=SKYWIRE01").unwrap(),
            Request::Hello {
                proto: WIRE_PROTO.into()
            }
        );
        assert!(parse_request("HELLO").is_err());
        assert!(parse_request("HELLO proto=SKYWIRE01 extra=1").is_err());
    }

    #[test]
    fn response_split() {
        assert_eq!(parse_response("OK {\"a\":1}").unwrap(), "{\"a\":1}");
        assert_eq!(parse_response("ERR nope").unwrap_err(), "nope");
        assert!(parse_response("???").is_err());
    }

    #[test]
    fn json_extractors() {
        let j = r#"{"a":1,"b":2.5,"c":true,"d":[3,4,5],"e":[],"s":"x"}"#;
        assert_eq!(json_u64(j, "a"), Some(1));
        assert_eq!(json_f64(j, "b"), Some(2.5));
        assert_eq!(json_bool(j, "c"), Some(true));
        assert_eq!(json_u64_array(j, "d"), Some(vec![3, 4, 5]));
        assert_eq!(json_u64_array(j, "e"), Some(vec![]));
        assert_eq!(json_u64(j, "missing"), None);
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
