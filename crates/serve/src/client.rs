//! Blocking protocol client: line-delimited by default, `SKYWIRE01`
//! binary frames after [`Client::hello`], pipelined on demand.
//!
//! One request out, one response back — or, with
//! [`Client::pipeline`], N requests written back-to-back and N replies
//! read in order, paying one round trip for the whole burst. The typed
//! helpers ([`Client::load`], [`Client::append`], [`Client::query`],
//! [`Client::batch`], [`Client::stats`], [`Client::shutdown`]) strip
//! the `OK `/`ERR ` status prefix and hand back the payload.
//!
//! Both transports carry the same bytes: a binary frame's payload is
//! exactly the text request/response (line, plus `\n` + raw body when
//! the line announces `bytes=<n>`), so switching modes never changes a
//! reply's content.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use skydiver_cluster::frame;

use crate::protocol::{parse_response, BatchSpec, QuerySpec, WIRE_PROTO};

/// A connected client. Not thread-safe — open one client per thread.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    framed: bool,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Client::from_stream(stream)
    }

    /// Wraps an already-connected stream (the cluster layer connects
    /// with its own deadline-budgeted `connect_timeout`, then hands
    /// the stream here). Request/response turnarounds are latency
    /// sensitive on every path, so `TCP_NODELAY` is set here — once,
    /// for every constructor.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
            framed: false,
        })
    }

    /// Connects, retrying `attempts` times with `delay` between tries —
    /// for scripts that race server startup.
    pub fn connect_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        attempts: usize,
        delay: Duration,
    ) -> std::io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        // lint: allow(R1) -- the `0..attempts.max(1)` range runs at least
        // once, so `last` is always populated on the error path
        Err(last.expect("at least one attempt"))
    }

    /// Whether the connection has been switched to binary framing.
    pub fn is_framed(&self) -> bool {
        self.framed
    }

    /// Negotiates the `SKYWIRE01` binary framing: sends `HELLO` in
    /// plain text, checks the acknowledgement, and frames everything
    /// after it (both directions).
    pub fn hello(&mut self) -> Result<(), String> {
        let payload = self.exchange(&format!("HELLO proto={WIRE_PROTO}"))?;
        if payload.trim() != format!("proto={WIRE_PROTO}") {
            return Err(format!("unexpected HELLO acknowledgement {payload:?}"));
        }
        self.framed = true;
        Ok(())
    }

    /// Writes one request (line + optional raw body) in the current
    /// transport mode, without flushing — pipelining batches many of
    /// these before one flush.
    fn send_request(&mut self, line: &str, body: Option<&[u8]>) -> std::io::Result<()> {
        if self.framed {
            let mut payload = Vec::with_capacity(line.len() + 1 + body.map_or(0, |b| b.len()));
            payload.extend_from_slice(line.as_bytes());
            if let Some(b) = body {
                payload.push(b'\n');
                payload.extend_from_slice(b);
            }
            self.writer.write_all(&frame::encode(&payload))
        } else {
            writeln!(self.writer, "{line}")?;
            if let Some(b) = body {
                self.writer.write_all(b)?;
            }
            Ok(())
        }
    }

    /// Reads one reply in the current transport mode: the status line
    /// plus its raw body, present whenever the line announces
    /// `bytes=<n>` (text) or the frame payload carries trailing bytes
    /// (binary).
    fn recv_reply(&mut self) -> std::io::Result<(String, Option<Vec<u8>>)> {
        if self.framed {
            let mut len8 = [0u8; 8];
            self.reader.read_exact(&mut len8)?;
            let plen = u64::from_le_bytes(len8);
            if plen > frame::MAX_FRAME_BYTES as u64 {
                return Err(std::io::Error::other(format!(
                    "response frame of {plen} bytes exceeds the cap"
                )));
            }
            let mut whole = vec![0u8; 8 + plen as usize + 8];
            whole[..8].copy_from_slice(&len8);
            self.reader.read_exact(&mut whole[8..])?;
            let payload = frame::decode(&whole)?;
            match payload.iter().position(|&b| b == b'\n') {
                Some(i) => Ok((
                    String::from_utf8_lossy(&payload[..i]).into_owned(),
                    Some(payload[i + 1..].to_vec()),
                )),
                None => Ok((String::from_utf8_lossy(payload).into_owned(), None)),
            }
        } else {
            let mut response = String::new();
            let n = self.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            let line = response.trim_end().to_string();
            let body_len = line
                .split_whitespace()
                .find_map(|tok| tok.strip_prefix("bytes="))
                .and_then(|v| v.parse::<usize>().ok());
            match body_len {
                None | Some(0) => Ok((line, None)),
                Some(len) => {
                    if len > frame::MAX_FRAME_BYTES {
                        return Err(std::io::Error::other(format!(
                            "response frame of {len} bytes exceeds the cap"
                        )));
                    }
                    let mut buf = vec![0u8; len];
                    self.reader.read_exact(&mut buf)?;
                    Ok((line, Some(buf)))
                }
            }
        }
    }

    /// Sends one raw request line, returns the raw response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        self.send_request(line, None)?;
        self.writer.flush()?;
        Ok(self.recv_reply()?.0)
    }

    /// Sends one request line and splits the response into
    /// `Ok(payload)` / `Err(message)`.
    pub fn exchange(&mut self, line: &str) -> Result<String, String> {
        let response = self.request(line).map_err(|e| format!("transport: {e}"))?;
        parse_response(&response)
    }

    /// Writes every request back-to-back, flushes once, then reads the
    /// replies in order — the whole burst costs one round trip instead
    /// of one per request. Replies are returned as raw response lines,
    /// index-aligned with `lines`.
    pub fn pipeline(&mut self, lines: &[String]) -> std::io::Result<Vec<String>> {
        for line in lines {
            self.send_request(line, None)?;
        }
        self.writer.flush()?;
        let mut replies = Vec::with_capacity(lines.len());
        for _ in 0..lines.len() {
            replies.push(self.recv_reply()?.0);
        }
        Ok(replies)
    }

    /// Sends one request line followed by an optional raw binary body,
    /// and reads the response line plus its body (present whenever the
    /// payload carries a `bytes=<n>` token). The cluster verbs
    /// (`SHARDPUT`/`FOLD`/`FETCH`) speak this shape; the body bytes are
    /// checksummed frames, validated by the caller.
    pub fn exchange_frame(
        &mut self,
        line: &str,
        body: Option<&[u8]>,
    ) -> Result<(String, Option<Vec<u8>>), String> {
        let io = |e: std::io::Error| format!("transport: {e}");
        self.send_request(line, body).map_err(io)?;
        self.writer.flush().map_err(io)?;
        let (response, body) = self.recv_reply().map_err(io)?;
        let payload = parse_response(&response)?;
        Ok((payload, body.filter(|b| !b.is_empty())))
    }

    /// `LOAD name=<name> path=<path>` — returns the summary payload.
    pub fn load(&mut self, name: &str, path: &str) -> Result<String, String> {
        self.exchange(&format!("LOAD name={name} path={path}"))
    }

    /// `APPEND name=<name> path=<path>` — grows a loaded dataset by one
    /// shard; returns the summary payload.
    pub fn append(&mut self, name: &str, path: &str) -> Result<String, String> {
        self.exchange(&format!("APPEND name={name} path={path}"))
    }

    /// Runs a query; returns the one-line JSON result payload.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<String, String> {
        self.exchange(&spec.to_line())
    }

    /// Runs a batch (one fingerprint, many selections); returns the
    /// one-line JSON result payload with its `results` array.
    pub fn batch(&mut self, spec: &BatchSpec) -> Result<String, String> {
        self.exchange(&spec.to_line())
    }

    /// `STATS` — returns the one-line JSON metrics snapshot.
    pub fn stats(&mut self) -> Result<String, String> {
        self.exchange("STATS")
    }

    /// `SNAPSHOT` — flushes the server's write-behind signature store;
    /// returns `persisted=<n>`.
    pub fn snapshot(&mut self) -> Result<String, String> {
        self.exchange("SNAPSHOT")
    }

    /// `RESTORE` — re-runs the store's recovery sweep; returns
    /// `artifacts=<n> quarantined=<q> removed_temps=<r>`.
    pub fn restore(&mut self) -> Result<String, String> {
        self.exchange("RESTORE")
    }

    /// `SHUTDOWN` — asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<String, String> {
        self.exchange("SHUTDOWN")
    }
}
