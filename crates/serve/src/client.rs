//! Blocking line-protocol client.
//!
//! One request line out, one response line back — the transport really
//! is that small. The typed helpers ([`Client::load`], [`Client::append`],
//! [`Client::query`], [`Client::stats`], [`Client::shutdown`]) strip the
//! `OK `/`ERR ` status prefix and hand back the payload.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{parse_response, QuerySpec};

/// A connected client. Not thread-safe — open one client per thread
/// (the server pairs one worker with one connection anyway).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Wraps an already-connected stream (the cluster layer connects
    /// with its own deadline-budgeted `connect_timeout` and socket
    /// timeouts, then hands the stream here).
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Client> {
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Connects, retrying `attempts` times with `delay` between tries —
    /// for scripts that race server startup.
    pub fn connect_retry<A: ToSocketAddrs + Copy>(
        addr: A,
        attempts: usize,
        delay: Duration,
    ) -> std::io::Result<Client> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        // lint: allow(R1) -- the `0..attempts.max(1)` range runs at least
        // once, so `last` is always populated on the error path
        Err(last.expect("at least one attempt"))
    }

    /// Sends one raw request line, returns the raw response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_string())
    }

    /// Sends one request line and splits the response into
    /// `Ok(payload)` / `Err(message)`.
    pub fn exchange(&mut self, line: &str) -> Result<String, String> {
        let response = self.request(line).map_err(|e| format!("transport: {e}"))?;
        parse_response(&response)
    }

    /// Sends one request line followed by an optional raw binary body,
    /// and reads the response line plus its body (present whenever the
    /// payload carries a `bytes=<n>` token). The cluster verbs
    /// (`SHARDPUT`/`FOLD`/`FETCH`) speak this shape; the body bytes are
    /// checksummed frames, validated by the caller.
    pub fn exchange_frame(
        &mut self,
        line: &str,
        body: Option<&[u8]>,
    ) -> Result<(String, Option<Vec<u8>>), String> {
        let io = |e: std::io::Error| format!("transport: {e}");
        writeln!(self.writer, "{line}").map_err(io)?;
        if let Some(body) = body {
            self.writer.write_all(body).map_err(io)?;
        }
        self.writer.flush().map_err(io)?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response).map_err(io)?;
        if n == 0 {
            return Err("transport: server closed the connection".to_string());
        }
        let payload = parse_response(response.trim_end())?;
        let body_len = payload
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("bytes="))
            .map(|v| {
                v.parse::<usize>()
                    .map_err(|_| format!("bad bytes= token in {payload:?}"))
            })
            .transpose()?;
        match body_len {
            None | Some(0) => Ok((payload, None)),
            Some(len) => {
                if len > skydiver_cluster::frame::MAX_FRAME_BYTES {
                    return Err(format!("response frame of {len} bytes exceeds the cap"));
                }
                use std::io::Read as _;
                let mut buf = vec![0u8; len];
                self.reader.read_exact(&mut buf).map_err(io)?;
                Ok((payload, Some(buf)))
            }
        }
    }

    /// `LOAD name=<name> path=<path>` — returns the summary payload.
    pub fn load(&mut self, name: &str, path: &str) -> Result<String, String> {
        self.exchange(&format!("LOAD name={name} path={path}"))
    }

    /// `APPEND name=<name> path=<path>` — grows a loaded dataset by one
    /// shard; returns the summary payload.
    pub fn append(&mut self, name: &str, path: &str) -> Result<String, String> {
        self.exchange(&format!("APPEND name={name} path={path}"))
    }

    /// Runs a query; returns the one-line JSON result payload.
    pub fn query(&mut self, spec: &QuerySpec) -> Result<String, String> {
        self.exchange(&spec.to_line())
    }

    /// `STATS` — returns the one-line JSON metrics snapshot.
    pub fn stats(&mut self) -> Result<String, String> {
        self.exchange("STATS")
    }

    /// `SNAPSHOT` — flushes the server's write-behind signature store;
    /// returns `persisted=<n>`.
    pub fn snapshot(&mut self) -> Result<String, String> {
        self.exchange("SNAPSHOT")
    }

    /// `RESTORE` — re-runs the store's recovery sweep; returns
    /// `artifacts=<n> quarantined=<q> removed_temps=<r>`.
    pub fn restore(&mut self) -> Result<String, String> {
        self.exchange("RESTORE")
    }

    /// `SHUTDOWN` — asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<String, String> {
        self.exchange("SHUTDOWN")
    }
}
