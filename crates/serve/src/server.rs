//! The TCP server: a blocking accept loop feeding a fixed worker pool.
//!
//! Hand-rolled on `std::net` (the build is offline — no tokio/hyper):
//! the thread calling [`Server::run`] accepts connections and queues
//! them on an `mpsc` channel; each of the `threads` workers pulls one
//! connection at a time and serves its line-delimited requests until the
//! client disconnects. Clients that want parallel queries open parallel
//! connections.
//!
//! **Admission control.** Every `QUERY` runs under a per-request
//! [`RunBudget`] assembled from its `timeout_ms` / `max_dominance_tests`
//! parameters plus a server-wide [`CancelToken`]. A tripped budget
//! degrades the query to a partial result (reported in the response and
//! counted in the metrics) instead of stalling the worker indefinitely.
//!
//! **Connection hardening.** Every accepted socket carries a read and
//! a write timeout (configurable, default 30 s) and a request-line
//! byte cap: a client that connects and never speaks, dribbles one
//! byte per second, or streams an endless line is disconnected instead
//! of pinning its worker — the read timeout doubles as the idle-
//! connection limit.
//!
//! **Shutdown.** `SHUTDOWN` flips the shared flag, cancels the
//! server-wide token (so long-running in-flight queries degrade and
//! finish promptly), and pokes the accept loop awake with a loopback
//! connection. Queued connections are drained before [`Server::run`]
//! returns; the final metrics snapshot is dumped to stderr.
//!
//! **Cluster roles.** Every server answers the worker verbs
//! (`SHARDPUT`/`FOLD`/`FETCH`/`REPLICATE`) through its [`ShardHost`] —
//! a node needs no restart to be drafted into a cluster. A server
//! started with [`ClusterConfig`] additionally acts as coordinator:
//! `LOAD`/`APPEND` route shards to workers, `QUERY` fans folds out and
//! merges, `JOIN`/`LEAVE` reshape the roster, and `STATS` rolls the
//! workers' snapshots up. Request lines carrying a `bytes=<n>` token
//! are followed by exactly `n` raw body bytes, bounded by
//! `max_frame_bytes`.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use skydiver_core::{
    canonicalise, select_diverse_budgeted, CancelToken, Degradation, ExactJaccardDistance,
    ExecContext, GammaSets, RunBudget, SeedRule, SkyDiver, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_skyline::sfs;

use crate::cluster::{ClusterConfig, ClusterState, ShardHost};
use crate::metrics::Metrics;
use crate::protocol::{json_escape, parse_request, Method, QuerySpec, Request};
use crate::registry::{parse_prefs, Registry};
use crate::store::SignatureStore;

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub threads: usize,
    /// Fingerprint-cache ceiling in bytes.
    pub cache_bytes: usize,
    /// Directory of the durable signature store; `None` disables
    /// persistence (cold restarts, as before PR 6).
    pub store_dir: Option<String>,
    /// Per-connection read timeout in milliseconds — doubles as the
    /// idle-connection limit: a client that sends nothing (or dribbles
    /// a request slower than this) is disconnected instead of pinning
    /// a worker. `0` disables the timeout.
    pub read_timeout_ms: u64,
    /// Per-connection write timeout in milliseconds (a client that
    /// stops reading its responses is shed). `0` disables.
    pub write_timeout_ms: u64,
    /// Longest accepted request line in bytes; a connection exceeding
    /// it gets one `ERR` and is closed (bounds per-connection memory).
    pub max_line_bytes: usize,
    /// Largest binary body (`SHARDPUT`/`FOLD` frame) accepted after a
    /// request line; a larger announcement gets one `ERR` and the
    /// connection is closed (the unread body cannot be resynced).
    pub max_frame_bytes: usize,
    /// Coordinator configuration. `Some` makes this server route
    /// `LOAD`/`APPEND` shards to workers and fan `QUERY` folds out to
    /// them; `None` serves single-process (but still answers the
    /// worker verbs).
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            cache_bytes: 64 << 20,
            store_dir: None,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            max_line_bytes: 64 << 10,
            max_frame_bytes: 256 << 20,
            cluster: None,
        }
    }
}

/// Per-connection hardening knobs, copied out of the config for the
/// worker threads.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    max_line_bytes: usize,
    max_frame_bytes: usize,
}

/// A bound (not yet running) diversification query server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    host: Arc<ShardHost>,
    cluster: Option<Arc<ClusterState>>,
    shutdown: Arc<AtomicBool>,
    cancel: CancelToken,
    threads: usize,
    limits: ConnLimits,
}

impl Server {
    /// Binds the listener and builds the shared registry (opening the
    /// durable store first when `store_dir` is set — its recovery sweep
    /// runs here, so by the time the server accepts a connection every
    /// surviving artefact has been validated). A store that cannot be
    /// opened is logged and dropped: the server degrades to cold
    /// recomputes rather than refusing to start. The server does not
    /// accept connections until [`Server::run`].
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let metrics = Arc::new(Metrics::new());
        let store = match &cfg.store_dir {
            Some(dir) => match SignatureStore::open(dir, Arc::clone(&metrics), &[]) {
                Ok((store, report)) => {
                    eprintln!(
                        "skydiver-store: opened {dir} ({} valid, {} quarantined, \
                         {} temp files removed)",
                        report.valid, report.quarantined, report.removed_temps
                    );
                    Some(Arc::new(store))
                }
                Err(e) => {
                    eprintln!(
                        "skydiver-store: cannot open {dir} ({e}); \
                         serving without persistence"
                    );
                    None
                }
            },
            None => None,
        };
        // The worker-side host shares the store (and its write-behind
        // queue) with the registry, so a node serves folds warm whether
        // it is queried directly or through a coordinator.
        let host = Arc::new(ShardHost::new(
            cfg.cache_bytes,
            Arc::clone(&metrics),
            store.clone(),
        ));
        let registry = Arc::new(Registry::with_store(
            cfg.cache_bytes,
            Arc::clone(&metrics),
            store,
        ));
        let cluster = cfg
            .cluster
            .as_ref()
            .map(|c| Arc::new(ClusterState::new(c, Arc::clone(&metrics))));
        Ok(Server {
            listener,
            registry,
            metrics,
            host,
            cluster,
            shutdown: Arc::new(AtomicBool::new(false)),
            cancel: CancelToken::new(),
            threads: cfg.threads.max(1),
            limits: ConnLimits {
                read_timeout_ms: cfg.read_timeout_ms,
                write_timeout_ms: cfg.write_timeout_ms,
                max_line_bytes: cfg.max_line_bytes.max(64),
                max_frame_bytes: cfg.max_frame_bytes.max(1024),
            },
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared registry — lets embedders preload datasets before
    /// serving (tests, the load generator).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Serves until a `SHUTDOWN` request arrives; drains queued
    /// connections, joins every worker and dumps the final metrics
    /// snapshot to stderr before returning.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.listener.local_addr()?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.threads);
        for wid in 0..self.threads {
            let rx = Arc::clone(&rx);
            let registry = Arc::clone(&self.registry);
            let host = Arc::clone(&self.host);
            let cluster = self.cluster.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let cancel = self.cancel.clone();
            let limits = self.limits;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("skydiver-serve-{wid}"))
                    .spawn(move || loop {
                        let next = rx.lock().unwrap_or_else(|e| e.into_inner()).recv();
                        let Ok(stream) = next else { break };
                        serve_connection(
                            stream,
                            &registry,
                            &host,
                            cluster.as_deref(),
                            &shutdown,
                            &cancel,
                            addr,
                            limits,
                        );
                    })?,
            );
        }
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            if tx.send(stream).is_err() {
                break;
            }
        }
        drop(tx);
        for w in workers {
            let _ = w.join();
        }
        eprintln!(
            "skydiver-serve: shutdown, final stats {}",
            self.metrics.snapshot_json()
        );
        Ok(())
    }

    /// Convenience: moves the server onto a background thread and
    /// returns a handle exposing the bound address, the registry, the
    /// metrics and a join point.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let join = std::thread::Builder::new()
            .name("skydiver-serve-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            registry,
            metrics,
            join,
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry (preload datasets here).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Waits for the server to shut down.
    pub fn join(self) -> std::io::Result<()> {
        self.join
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

/// One bounded read of a request line.
enum ReadLine {
    /// A complete line arrived within the byte cap.
    Line(String),
    /// The line exceeded the cap — shed the client after one `ERR`.
    Oversized,
    /// EOF, idle/read timeout, or a transport error — close silently.
    Closed,
}

/// Reads one `\n`-terminated line, never buffering more than `max`
/// bytes — a slow-loris client dribbling an endless line is bounded in
/// memory here and bounded in time by the socket's read timeout.
fn read_request_line(reader: &mut BufReader<TcpStream>, max: usize) -> ReadLine {
    let mut buf = Vec::new();
    let mut limited = reader.by_ref().take(max as u64 + 1);
    match limited.read_until(b'\n', &mut buf) {
        Ok(0) => ReadLine::Closed,
        Ok(_) if buf.last() != Some(&b'\n') && buf.len() > max => ReadLine::Oversized,
        Ok(_) => ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()),
        Err(_) => ReadLine::Closed,
    }
}

/// One response: the status line, an optional raw body (announced by a
/// `bytes=<n>` token inside the line's payload), and the shutdown flag.
struct Reply {
    line: String,
    body: Option<Vec<u8>>,
    shutdown: bool,
}

impl Reply {
    /// A body-less response line.
    fn line(line: String) -> Reply {
        Reply {
            line,
            body: None,
            shutdown: false,
        }
    }
}

/// Serves one connection: request line (plus optional binary body) in,
/// response line (plus optional binary body) out, until the client
/// disconnects, idles past the read timeout, oversteps the line or
/// frame cap, or sends `SHUTDOWN`.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: TcpStream,
    registry: &Registry,
    host: &ShardHost,
    cluster: Option<&ClusterState>,
    shutdown: &AtomicBool,
    cancel: &CancelToken,
    addr: SocketAddr,
    limits: ConnLimits,
) {
    if limits.read_timeout_ms > 0 {
        let _ = stream.set_read_timeout(Some(Duration::from_millis(limits.read_timeout_ms)));
    }
    if limits.write_timeout_ms > 0 {
        let _ = stream.set_write_timeout(Some(Duration::from_millis(limits.write_timeout_ms)));
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_request_line(&mut reader, limits.max_line_bytes) {
            ReadLine::Line(line) => line,
            ReadLine::Oversized => {
                let _ = writeln!(
                    writer,
                    "ERR request line exceeds {} bytes",
                    limits.max_line_bytes
                );
                let _ = writer.flush();
                break;
            }
            ReadLine::Closed => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        // Parse before reading any body: only a well-formed line can
        // announce how many bytes follow. A malformed line never has a
        // body to skip, so the connection can keep serving after the
        // `ERR`.
        let req = match parse_request(&line) {
            Ok(req) => req,
            Err(e) => {
                registry.metrics().bump(&registry.metrics().errors);
                if writeln!(writer, "ERR {e}").is_err() || writer.flush().is_err() {
                    break;
                }
                continue;
            }
        };
        let body = match req.body_bytes() {
            Some(n) if n > limits.max_frame_bytes => {
                // The unread body cannot be resynced — shed the client.
                registry.metrics().bump(&registry.metrics().errors);
                let _ = writeln!(
                    writer,
                    "ERR request body of {n} bytes exceeds {} bytes",
                    limits.max_frame_bytes
                );
                let _ = writer.flush();
                break;
            }
            Some(n) => {
                let mut buf = vec![0u8; n];
                if reader.read_exact(&mut buf).is_err() {
                    break;
                }
                Some(buf)
            }
            None => None,
        };
        let reply = respond(req, body.as_deref(), registry, host, cluster, cancel);
        if writeln!(writer, "{}", reply.line).is_err() {
            break;
        }
        if let Some(body) = &reply.body {
            if writer.write_all(body).is_err() {
                break;
            }
        }
        if writer.flush().is_err() {
            break;
        }
        if reply.shutdown {
            shutdown.store(true, Ordering::Release);
            cancel.cancel();
            // Poke the blocking accept loop awake so it observes the flag.
            let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
            break;
        }
    }
}

/// Dispatches one parsed request (body already read off the wire).
fn respond(
    req: Request,
    body: Option<&[u8]>,
    registry: &Registry,
    host: &ShardHost,
    cluster: Option<&ClusterState>,
    cancel: &CancelToken,
) -> Reply {
    let metrics = Arc::clone(registry.metrics());
    let err = |e: String| {
        metrics.bump(&metrics.errors);
        Reply::line(format!("ERR {e}"))
    };
    match req {
        Request::Load { name, path } => {
            let result = match cluster {
                Some(cs) => cs.load(registry, &name, &path),
                None => registry
                    .load_path(&name, &path)
                    .map(|(points, dims)| format!("dataset={name} points={points} dims={dims}")),
            };
            match result {
                Ok(payload) => {
                    metrics.bump(&metrics.loads);
                    Reply::line(format!("OK {payload}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Append { name, path } => {
            let result =
                match cluster {
                    Some(cs) => cs.append(registry, &name, &path),
                    None => registry.append_path(&name, &path).map(
                        |(points, dims, shards, appended)| {
                            format!(
                                "dataset={name} points={points} dims={dims} \
                             shards={shards} appended={appended}"
                            )
                        },
                    ),
                };
            match result {
                Ok(payload) => {
                    metrics.bump(&metrics.appends);
                    Reply::line(format!("OK {payload}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Query(q) => {
            let t0 = Instant::now();
            match answer_query(&q, registry, cluster, cancel) {
                Ok(json) => {
                    metrics.bump(&metrics.queries);
                    metrics
                        .latency
                        .record_micros(t0.elapsed().as_micros() as u64);
                    Reply::line(format!("OK {json}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Stats => match cluster {
            Some(cs) => Reply::line(format!("OK {}", cs.stats_rollup(registry))),
            None => Reply::line(format!("OK {}", registry.stats_json())),
        },
        Request::Snapshot => match registry.store_snapshot() {
            Ok(persisted) => Reply::line(format!("OK persisted={persisted}")),
            Err(e) => err(e),
        },
        Request::Restore => match registry.store_restore() {
            Ok(r) => Reply::line(format!(
                "OK artifacts={} quarantined={} removed_temps={}",
                r.valid, r.quarantined, r.removed_temps
            )),
            Err(e) => err(e),
        },
        Request::Join { addr } => match cluster {
            Some(cs) => match cs.join(registry, &addr) {
                Ok(payload) => Reply::line(format!("OK {payload}")),
                Err(e) => err(e),
            },
            None => err("not a coordinator (start with --workers)".to_string()),
        },
        Request::Leave { addr } => match cluster {
            Some(cs) => match cs.leave(registry, &addr) {
                Ok(payload) => Reply::line(format!("OK {payload}")),
                Err(e) => err(e),
            },
            None => err("not a coordinator (start with --workers)".to_string()),
        },
        Request::ShardPut {
            name,
            shard,
            base,
            replace,
            ..
        } => match host.shardput(&name, shard, base, replace, body.unwrap_or_default()) {
            Ok(payload) => Reply::line(format!("OK {payload}")),
            Err(e) => err(e),
        },
        Request::Fold {
            dataset,
            hash,
            shard,
            shard_hash,
            prefs,
            t,
            seed,
            max_dominance_tests,
            timeout_ms,
            ..
        } => match host.fold(
            &dataset,
            hash,
            shard,
            shard_hash,
            &prefs,
            t,
            seed,
            max_dominance_tests,
            timeout_ms,
            body.unwrap_or_default(),
            cancel,
        ) {
            Ok((header, frame)) => Reply {
                line: format!("OK {header}"),
                body: Some(frame),
                shutdown: false,
            },
            Err(e) => err(e),
        },
        Request::Fetch {
            name,
            hash,
            shard,
            prefs,
            t,
            seed,
        } => match host.fetch(&name, hash, shard, &prefs, t, seed) {
            Ok((header, frame)) => Reply {
                line: format!("OK {header}"),
                body: frame,
                shutdown: false,
            },
            Err(e) => err(e),
        },
        Request::Replicate {
            name,
            hash,
            shard,
            prefs,
            t,
            seed,
            from,
        } => match host.replicate(&name, hash, shard, &prefs, t, seed, &from) {
            Ok(payload) => Reply::line(format!("OK {payload}")),
            Err(e) => err(e),
        },
        Request::Shutdown => Reply {
            line: "OK shutting down".to_string(),
            body: None,
            shutdown: true,
        },
    }
}

/// Builds the per-request budget: client limits + the server-wide
/// cancellation token.
fn request_budget(q: &QuerySpec, cancel: &CancelToken) -> RunBudget {
    let mut budget = RunBudget::none().with_cancel_token(cancel.clone());
    if let Some(ms) = q.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = q.max_dominance_tests {
        budget = budget.with_max_dominance_tests(n);
    }
    budget
}

/// Answers a `QUERY`: signature methods go through the fingerprint
/// cache + [`SkyDiver::select_from`]; the exact `greedy` baseline
/// recomputes dominated sets per query (never cached). On a
/// coordinator the fingerprint comes from the cluster fan-out — merged
/// to the same bits, so selection (and the response payload) is
/// identical to the single-process answer.
fn answer_query(
    q: &QuerySpec,
    registry: &Registry,
    cluster: Option<&ClusterState>,
    cancel: &CancelToken,
) -> Result<String, String> {
    let t0 = Instant::now();
    let ds = registry
        .dataset(&q.dataset)
        .ok_or_else(|| format!("unknown dataset {:?} (LOAD it first)", q.dataset))?;
    let (prefs, prefs_key) = parse_prefs(q.prefs.as_deref(), ds.data.dims())?;
    let budget = request_budget(q, cancel);
    let metrics = Arc::clone(registry.metrics());

    #[allow(clippy::type_complexity)]
    let (
        skyline_len,
        selected,
        gamma,
        fingerprint_ms,
        selection_ms,
        memory_bytes,
        cached,
        dominance_tests,
        degradation,
    ): (
        usize,
        Vec<usize>,
        Vec<u64>,
        f64,
        f64,
        usize,
        bool,
        u64,
        Degradation,
    ) = match q.method {
        Method::Greedy => {
            let whole = ds.whole();
            let (skyline_len, selected, gamma, selection_ms, degradation) =
                answer_exact(q, &whole, &prefs, budget)?;
            (
                skyline_len,
                selected,
                gamma,
                0.0,
                selection_ms,
                0usize,
                false,
                0,
                degradation,
            )
        }
        Method::MinHash | Method::Lsh { .. } => {
            let (fp, cached, dominance_tests) = match cluster {
                Some(cs) => cs.fingerprint(
                    registry,
                    &q.dataset,
                    &prefs,
                    &prefs_key,
                    q.t,
                    q.seed,
                    budget.clone(),
                    q.max_dominance_tests,
                    q.timeout_ms,
                )?,
                None => registry.fingerprint(
                    &q.dataset,
                    &prefs,
                    &prefs_key,
                    q.t,
                    q.seed,
                    budget.clone(),
                )?,
            };
            let mut diver = SkyDiver::new(q.k)
                .signature_size(q.t)
                .hash_seed(q.seed)
                .budget(budget);
            if let Method::Lsh { xi, buckets } = q.method {
                diver = diver.lsh(xi, buckets);
            }
            let r = diver.select_from(&fp).map_err(|e| e.to_string())?;
            let gamma: Vec<u64> = r.selected_positions.iter().map(|&p| r.scores[p]).collect();
            // A cache hit charges no fingerprinting (and no dominance
            // tests) to this request.
            let fingerprint_ms = if cached { 0.0 } else { r.fingerprint_ms };
            (
                r.skyline.len(),
                r.selected,
                gamma,
                fingerprint_ms,
                r.selection_ms,
                r.memory_bytes,
                cached,
                dominance_tests,
                r.degradation,
            )
        }
    };

    let degraded = degradation.is_degraded();
    if degraded {
        metrics.bump(&metrics.degraded);
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected_json: Vec<String> = selected.iter().map(|i| i.to_string()).collect();
    let gamma_json: Vec<String> = gamma.iter().map(|g| g.to_string()).collect();
    Ok(format!(
        concat!(
            "{{\"dataset\":\"{}\",\"k\":{},\"method\":\"{}\",\"cached\":{},",
            "\"skyline\":{},\"selected\":[{}],\"gamma\":[{}],",
            "\"fingerprint_ms\":{:.3},\"selection_ms\":{:.3},\"total_ms\":{:.3},",
            "\"memory_bytes\":{},\"dominance_tests\":{},",
            "\"degraded\":{},\"status\":\"{}\"}}"
        ),
        json_escape(&q.dataset),
        q.k,
        q.method.token(),
        cached,
        skyline_len,
        selected_json.join(","),
        gamma_json.join(","),
        fingerprint_ms,
        selection_ms,
        total_ms,
        memory_bytes,
        dominance_tests,
        degraded,
        json_escape(&degradation.summary()),
    ))
}

/// The exact greedy baseline: dominated-set Jaccard distances over
/// explicit [`GammaSets`] — no signatures, no cache, per-query cost
/// `O(n · m)` like a cold fingerprint plus an exact selection.
#[allow(clippy::type_complexity)]
fn answer_exact(
    q: &QuerySpec,
    data: &skydiver_data::Dataset,
    prefs: &[skydiver_data::Preference],
    budget: RunBudget,
) -> Result<(usize, Vec<usize>, Vec<u64>, f64, Degradation), String> {
    let ctx = ExecContext::new(budget);
    let canon = canonicalise(data, prefs).map_err(|e| e.to_string())?;
    let skyline = sfs(canon.as_ref(), &MinDominance);
    if skyline.is_empty() {
        return Err("empty skyline".to_string());
    }
    let t0 = Instant::now();
    let gamma = GammaSets::build(canon.as_ref(), &MinDominance, &skyline);
    let scores = gamma.scores();
    let mut dist = ExactJaccardDistance::new(&gamma);
    let (positions, interrupt) = select_diverse_budgeted(
        &mut dist,
        &scores,
        q.k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
        &ctx,
    )
    .map_err(|e| e.to_string())?;
    let selection_ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected: Vec<usize> = positions.iter().map(|&p| skyline[p]).collect();
    let gamma_scores: Vec<u64> = positions.iter().map(|&p| scores[p]).collect();
    let events = match &interrupt {
        Some(_) => vec![skydiver_core::DegradationEvent::SelectionCurtailed {
            selected: positions.len(),
            requested: q.k,
        }],
        None => vec![],
    };
    Ok((
        skyline.len(),
        selected,
        gamma_scores,
        selection_ms,
        Degradation { interrupt, events },
    ))
}
