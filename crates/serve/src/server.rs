//! The TCP server: a readiness-driven, nonblocking event loop.
//!
//! Hand-rolled on `std::net` plus the [`crate::poll`] shim (the build
//! is offline — no tokio/hyper/mio): [`Server::run`] spawns `threads`
//! event-loop threads, each multiplexing its own set of accepted
//! connections over an [`Poller`] (epoll on Linux, `poll(2)`
//! elsewhere). Every socket is nonblocking; each connection is a small
//! state machine with a read buffer, a write buffer, and deadlines.
//!
//! **Pipelining.** A connection parses *every* complete request its
//! read buffer holds and queues the responses in order, so a client
//! may write N requests back-to-back and read N replies — one round
//! trip for the whole burst instead of one per query. The observed
//! depth per network read feeds the `pipeline` histogram.
//!
//! **Binary framing.** `HELLO proto=SKYWIRE01` flips the connection to
//! length-prefixed frames (the `skydiver_cluster::frame` codec) whose
//! payload is exactly the text-protocol bytes — see [`crate::protocol`].
//!
//! **Admission control.** Every `QUERY`/`BATCH` runs under a
//! per-request [`RunBudget`] assembled from its `timeout_ms` /
//! `max_dominance_tests` parameters plus a server-wide [`CancelToken`].
//! A tripped budget degrades the query to a partial result instead of
//! stalling the loop indefinitely.
//!
//! **Connection hardening.** Deadlines are enforced by a sweep on the
//! loop's tick rather than `set_read_timeout`: a connection that has
//! not *completed* a request within `read_timeout_ms` is shed — that
//! covers the silent idler and the slow-loris dribbling one byte at a
//! time equally, without pinning a thread. A client that stops reading
//! its responses trips `write_timeout_ms` the same way. The request
//! line cap and the frame cap bound per-connection memory.
//!
//! **Shutdown.** `SHUTDOWN` queues its `OK`, and once that reply is
//! flushed (or its 1 s grace expires) the shared flag flips and the
//! server-wide token cancels in-flight work; every loop observes the
//! flag within a tick, closes its connections and exits. The final
//! metrics snapshot is dumped to stderr.
//!
//! **Cluster roles.** Every server answers the worker verbs
//! (`SHARDPUT`/`FOLD`/`FETCH`/`REPLICATE`) through its [`ShardHost`] —
//! a node needs no restart to be drafted into a cluster. A server
//! started with [`ClusterConfig`] additionally acts as coordinator:
//! `LOAD`/`APPEND` route shards to workers, `QUERY`/`BATCH` fan folds
//! out and merge, `JOIN`/`LEAVE` reshape the roster, and `STATS` rolls
//! the workers' snapshots up. Request lines carrying a `bytes=<n>`
//! token are followed by exactly `n` raw body bytes, bounded by
//! `max_frame_bytes`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skydiver_cluster::frame;
use skydiver_core::{
    canonicalise, select_diverse_budgeted, CancelToken, Degradation, ExactJaccardDistance,
    ExecContext, GammaSets, RunBudget, SeedRule, SkyDiver, TieBreak,
};
use skydiver_data::dominance::MinDominance;
use skydiver_skyline::sfs;

use crate::cluster::{ClusterConfig, ClusterState, ShardHost};
use crate::metrics::Metrics;
use crate::poll::{Event, Interest, Poller};
use crate::protocol::{
    json_escape, parse_request, BatchSpec, Method, QuerySpec, Request, WIRE_PROTO,
};
use crate::registry::{parse_prefs, Registry, SelectionMemo};
use crate::store::SignatureStore;

/// Configuration of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free port).
    pub addr: String,
    /// Event-loop threads (each multiplexes many connections).
    pub threads: usize,
    /// Fingerprint-cache ceiling in bytes.
    pub cache_bytes: usize,
    /// Directory of the durable signature store; `None` disables
    /// persistence (cold restarts, as before PR 6).
    pub store_dir: Option<String>,
    /// Per-connection request deadline in milliseconds — doubles as
    /// the idle-connection limit: a client that completes no request
    /// within it (silent, or dribbling bytes slower than this) is shed
    /// by the deadline sweep. `0` disables the deadline.
    pub read_timeout_ms: u64,
    /// Per-connection write deadline in milliseconds (a client that
    /// stops reading its responses is shed). `0` disables.
    pub write_timeout_ms: u64,
    /// Longest accepted request line in bytes; a connection exceeding
    /// it gets one `ERR` and is closed (bounds per-connection memory).
    pub max_line_bytes: usize,
    /// Largest binary body (`SHARDPUT`/`FOLD` frame) or `SKYWIRE01`
    /// frame payload accepted; a larger announcement gets one `ERR`
    /// and the connection is closed (the unread body cannot be
    /// resynced).
    pub max_frame_bytes: usize,
    /// Coordinator configuration. `Some` makes this server route
    /// `LOAD`/`APPEND` shards to workers and fan `QUERY` folds out to
    /// them; `None` serves single-process (but still answers the
    /// worker verbs).
    pub cluster: Option<ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 4,
            cache_bytes: 64 << 20,
            store_dir: None,
            read_timeout_ms: 30_000,
            write_timeout_ms: 30_000,
            max_line_bytes: 64 << 10,
            max_frame_bytes: 256 << 20,
            cluster: None,
        }
    }
}

/// Per-connection hardening knobs, copied out of the config for the
/// event-loop threads.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    max_line_bytes: usize,
    max_frame_bytes: usize,
}

/// A bound (not yet running) diversification query server.
pub struct Server {
    listener: TcpListener,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    host: Arc<ShardHost>,
    cluster: Option<Arc<ClusterState>>,
    shutdown: Arc<AtomicBool>,
    cancel: CancelToken,
    threads: usize,
    limits: ConnLimits,
}

impl Server {
    /// Binds the listener and builds the shared registry (opening the
    /// durable store first when `store_dir` is set — its recovery sweep
    /// runs here, so by the time the server accepts a connection every
    /// surviving artefact has been validated). A store that cannot be
    /// opened is logged and dropped: the server degrades to cold
    /// recomputes rather than refusing to start. The server does not
    /// accept connections until [`Server::run`].
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let metrics = Arc::new(Metrics::new());
        let store = match &cfg.store_dir {
            Some(dir) => match SignatureStore::open(dir, Arc::clone(&metrics), &[]) {
                Ok((store, report)) => {
                    eprintln!(
                        "skydiver-store: opened {dir} ({} valid, {} quarantined, \
                         {} temp files removed)",
                        report.valid, report.quarantined, report.removed_temps
                    );
                    Some(Arc::new(store))
                }
                Err(e) => {
                    eprintln!(
                        "skydiver-store: cannot open {dir} ({e}); \
                         serving without persistence"
                    );
                    None
                }
            },
            None => None,
        };
        // The worker-side host shares the store (and its write-behind
        // queue) with the registry, so a node serves folds warm whether
        // it is queried directly or through a coordinator.
        let host = Arc::new(ShardHost::new(
            cfg.cache_bytes,
            Arc::clone(&metrics),
            store.clone(),
        ));
        let registry = Arc::new(Registry::with_store(
            cfg.cache_bytes,
            Arc::clone(&metrics),
            store,
        ));
        let cluster = cfg
            .cluster
            .as_ref()
            .map(|c| Arc::new(ClusterState::new(c, Arc::clone(&metrics))));
        Ok(Server {
            listener,
            registry,
            metrics,
            host,
            cluster,
            shutdown: Arc::new(AtomicBool::new(false)),
            cancel: CancelToken::new(),
            threads: cfg.threads.max(1),
            limits: ConnLimits {
                read_timeout_ms: cfg.read_timeout_ms,
                write_timeout_ms: cfg.write_timeout_ms,
                max_line_bytes: cfg.max_line_bytes.max(64),
                max_frame_bytes: cfg.max_frame_bytes.max(1024),
            },
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The shared registry — lets embedders preload datasets before
    /// serving (tests, the load generator).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Serves until a `SHUTDOWN` request arrives; every event loop
    /// drains, joins, and the final metrics snapshot is dumped to
    /// stderr before returning.
    pub fn run(self) -> std::io::Result<()> {
        // O_NONBLOCK lives on the shared file description, so setting
        // it once covers every per-thread clone below.
        self.listener.set_nonblocking(true)?;
        let mut loops = Vec::with_capacity(self.threads);
        for wid in 0..self.threads {
            let listener = self.listener.try_clone()?;
            let ctx = LoopCtx {
                registry: Arc::clone(&self.registry),
                host: Arc::clone(&self.host),
                cluster: self.cluster.clone(),
                shutdown: Arc::clone(&self.shutdown),
                cancel: self.cancel.clone(),
                limits: self.limits,
            };
            loops.push(
                std::thread::Builder::new()
                    .name(format!("skydiver-serve-{wid}"))
                    .spawn(move || event_loop(listener, ctx))?,
            );
        }
        // lint: allow(R2) -- joins a fixed handful of loop threads, each of which exits on the shutdown flag
        for h in loops {
            let _ = h.join();
        }
        eprintln!(
            "skydiver-serve: shutdown, final stats {}",
            self.metrics.snapshot_json()
        );
        Ok(())
    }

    /// Convenience: moves the server onto a background thread and
    /// returns a handle exposing the bound address, the registry, the
    /// metrics and a join point.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let registry = Arc::clone(&self.registry);
        let metrics = Arc::clone(&self.metrics);
        let join = std::thread::Builder::new()
            .name("skydiver-serve-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle {
            addr,
            registry,
            metrics,
            join,
        })
    }
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    registry: Arc<Registry>,
    metrics: Arc<Metrics>,
    join: std::thread::JoinHandle<std::io::Result<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared registry (preload datasets here).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The shared metrics block.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Waits for the server to shut down.
    pub fn join(self) -> std::io::Result<()> {
        self.join
            .join()
            .map_err(|_| std::io::Error::other("server thread panicked"))?
    }
}

// ---------------------------------------------------------------------
// The event loop
// ---------------------------------------------------------------------

/// Everything one event-loop thread shares with the rest of the server.
struct LoopCtx {
    registry: Arc<Registry>,
    host: Arc<ShardHost>,
    cluster: Option<Arc<ClusterState>>,
    shutdown: Arc<AtomicBool>,
    cancel: CancelToken,
    limits: ConnLimits,
}

const LISTENER_TOKEN: u64 = 0;
/// Bytes read per wake-up before yielding to other connections — a
/// firehose client is re-scheduled (level-triggered) instead of
/// starving its neighbours.
const READ_BUDGET_BYTES: usize = 1 << 20;

/// One nonblocking connection state machine.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes; `rpos` is the consumed prefix.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Queued response bytes; `wpos` is the flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// `true` after a successful `HELLO proto=SKYWIRE01`.
    framed: bool,
    /// A text-mode request whose announced body has not fully arrived.
    pending: Option<(Request, usize)>,
    /// Last time a complete request was parsed (or the connection was
    /// accepted) — the read/idle deadline anchors here, so a dribbler
    /// that never completes a request is shed like a silent idler.
    last_progress: Instant,
    /// Last time response bytes left the socket.
    last_write: Instant,
    eof: bool,
    /// Close once the write buffer drains.
    closing: bool,
    /// This connection carried `SHUTDOWN`: flip the server-wide flag
    /// once its reply is flushed (or its grace expires).
    shutdown_after_flush: bool,
    /// Whether the poller registration currently includes write.
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            framed: false,
            pending: None,
            last_progress: now,
            last_write: now,
            eof: false,
            closing: false,
            shutdown_after_flush: false,
            want_write: false,
        }
    }
}

/// The sweep/wake interval: fine enough to enforce the configured
/// deadlines promptly, coarse enough to stay idle-cheap.
fn tick_interval(limits: &ConnLimits) -> Duration {
    let mut tick = Duration::from_millis(100);
    // lint: allow(R2) -- two-element literal array, pure arithmetic
    for ms in [limits.read_timeout_ms, limits.write_timeout_ms] {
        if ms > 0 {
            tick = tick.min(Duration::from_millis((ms / 4).max(10)));
        }
    }
    tick
}

/// One event-loop thread: accepts, reads, dispatches and writes over a
/// private [`Poller`] until the server-wide shutdown flag flips.
fn event_loop(listener: TcpListener, ctx: LoopCtx) {
    let metrics = Arc::clone(ctx.registry.metrics());
    let mut poller = match Poller::new() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("skydiver-serve: poller init failed: {e}");
            return;
        }
    };
    if let Err(e) = poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ) {
        eprintln!("skydiver-serve: cannot watch listener: {e}");
        return;
    }
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let tick = tick_interval(&ctx.limits);
    loop {
        if ctx.shutdown.load(Ordering::Acquire) {
            break;
        }
        if poller.wait(&mut events, Some(tick)).is_err() {
            break;
        }
        for &ev in &events {
            if ev.token == LISTENER_TOKEN {
                accept_all(&listener, &mut poller, &mut conns, &metrics);
                continue;
            }
            let idx = (ev.token as usize).wrapping_sub(1);
            let mut finished = false;
            if let Some(Some(conn)) = conns.get_mut(idx) {
                if ev.closed && !ev.readable {
                    conn.closing = true;
                    conn.wbuf.clear();
                    conn.wpos = 0;
                }
                if ev.readable {
                    on_readable(conn, &ctx, &metrics);
                }
                if !conn.wbuf.is_empty() {
                    flush_conn(conn, &metrics);
                }
                update_interest(&mut poller, conn, ev.token);
                finished = conn.closing && conn.wbuf.is_empty();
            }
            if finished {
                close_conn(&mut poller, &mut conns, idx, &ctx.shutdown, &ctx.cancel);
            }
        }
        sweep_deadlines(
            &mut poller,
            &mut conns,
            &ctx.limits,
            &metrics,
            &ctx.shutdown,
            &ctx.cancel,
        );
    }
    // Shutdown: one best-effort flush per connection, then close.
    for idx in 0..conns.len() {
        if let Some(Some(conn)) = conns.get_mut(idx) {
            flush_conn(conn, &metrics);
        }
        close_conn(&mut poller, &mut conns, idx, &ctx.shutdown, &ctx.cancel);
    }
    let _ = poller.deregister(listener.as_raw_fd());
}

/// Accepts until the (shared, nonblocking) listener would block.
fn accept_all(
    listener: &TcpListener,
    poller: &mut Poller,
    conns: &mut Vec<Option<Conn>>,
    metrics: &Metrics,
) {
    // lint: allow(R2) -- accepts until WouldBlock; bounded by the backlog
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                // Pipelined request/response turnarounds are latency
                // sensitive — never batch them behind Nagle.
                let _ = stream.set_nodelay(true);
                metrics.bump(&metrics.conns_accepted);
                let idx = conns
                    .iter()
                    .position(|c| c.is_none())
                    .unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                let conn = Conn::new(stream);
                if poller
                    .register(conn.stream.as_raw_fd(), idx as u64 + 1, Interest::READ)
                    .is_ok()
                {
                    conns[idx] = Some(conn);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Drains the socket into the read buffer, then parses and answers
/// every complete request buffered (the pipelining core).
fn on_readable(conn: &mut Conn, ctx: &LoopCtx, metrics: &Metrics) {
    let mut chunk = [0u8; 16 * 1024];
    let mut read_budget = READ_BUDGET_BYTES;
    loop {
        if read_budget == 0 {
            break; // level-triggered: the poller re-wakes us for the rest
        }
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                metrics.add(&metrics.bytes_in, n as u64);
                read_budget = read_budget.saturating_sub(n);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.eof = true;
                conn.closing = true;
                break;
            }
        }
    }
    let parsed = parse_and_dispatch(conn, ctx, metrics);
    if parsed > 0 {
        metrics.pipeline.record_micros(parsed as u64);
        conn.last_progress = Instant::now();
    }
    if conn.eof && conn.pending.is_none() {
        // Half-close: the client finished writing. Whatever could
        // complete above has been answered; flush and go.
        conn.closing = true;
    }
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
}

/// Parses every complete request in the read buffer and queues its
/// reply; returns how many replies were queued (the pipeline depth of
/// this wake-up).
fn parse_and_dispatch(conn: &mut Conn, ctx: &LoopCtx, metrics: &Metrics) -> usize {
    let mut count = 0usize;
    // lint: allow(R2) -- consumes only already-buffered bytes; each
    // dispatched request runs under its own budget + the server token
    loop {
        if conn.closing {
            break;
        }
        // A text-mode body announced by `bytes=<n>` may span reads.
        if let Some((req, need)) = conn.pending.take() {
            if conn.rbuf.len() - conn.rpos < need {
                conn.pending = Some((req, need));
                break;
            }
            let body = conn.rbuf[conn.rpos..conn.rpos + need].to_vec();
            conn.rpos += need;
            dispatch(conn, req, Some(body), ctx, metrics);
            count += 1;
            continue;
        }
        let stepped = if conn.framed {
            step_framed(conn, ctx, metrics, &mut count)
        } else {
            step_text(conn, ctx, metrics, &mut count)
        };
        if !stepped {
            break;
        }
    }
    count
}

/// One step of the line-delimited state machine. Returns `false` when
/// more bytes are needed (or the connection is now closing).
fn step_text(conn: &mut Conn, ctx: &LoopCtx, metrics: &Metrics, count: &mut usize) -> bool {
    let avail = &conn.rbuf[conn.rpos..];
    let Some(rel) = avail.iter().position(|&b| b == b'\n') else {
        if avail.len() > ctx.limits.max_line_bytes {
            // Same shed as the blocking server: one ERR, then close.
            queue_reply(
                conn,
                &format!(
                    "ERR request line exceeds {} bytes",
                    ctx.limits.max_line_bytes
                ),
                None,
            );
            conn.closing = true;
        }
        return false;
    };
    if rel > ctx.limits.max_line_bytes {
        queue_reply(
            conn,
            &format!(
                "ERR request line exceeds {} bytes",
                ctx.limits.max_line_bytes
            ),
            None,
        );
        conn.closing = true;
        return false;
    }
    let line = String::from_utf8_lossy(&avail[..rel]).into_owned();
    conn.rpos += rel + 1;
    if line.trim().is_empty() {
        return true;
    }
    // Parse before reading any body: only a well-formed line can
    // announce how many bytes follow. A malformed line never has a
    // body to skip, so the connection keeps serving after the `ERR`.
    let req = match parse_request(&line) {
        Ok(req) => req,
        Err(e) => {
            metrics.bump(&metrics.errors);
            queue_reply(conn, &format!("ERR {e}"), None);
            *count += 1;
            return true;
        }
    };
    match req.body_bytes() {
        Some(n) if n > ctx.limits.max_frame_bytes => {
            // The unread body cannot be resynced — shed the client.
            metrics.bump(&metrics.errors);
            queue_reply(
                conn,
                &format!(
                    "ERR request body of {n} bytes exceeds {} bytes",
                    ctx.limits.max_frame_bytes
                ),
                None,
            );
            conn.closing = true;
            false
        }
        Some(n) => {
            if conn.rbuf.len() - conn.rpos >= n {
                let body = conn.rbuf[conn.rpos..conn.rpos + n].to_vec();
                conn.rpos += n;
                dispatch(conn, req, Some(body), ctx, metrics);
                *count += 1;
                true
            } else {
                conn.pending = Some((req, n));
                false
            }
        }
        None => {
            dispatch(conn, req, None, ctx, metrics);
            *count += 1;
            true
        }
    }
}

/// One step of the `SKYWIRE01` framed state machine. Returns `false`
/// when more bytes are needed (or the connection is now closing).
fn step_framed(conn: &mut Conn, ctx: &LoopCtx, metrics: &Metrics, count: &mut usize) -> bool {
    let avail = conn.rbuf.len() - conn.rpos;
    if avail < 8 {
        return false;
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&conn.rbuf[conn.rpos..conn.rpos + 8]);
    let plen = u64::from_le_bytes(len8);
    if plen > ctx.limits.max_frame_bytes as u64 {
        metrics.bump(&metrics.errors);
        queue_reply(
            conn,
            &format!(
                "ERR frame of {plen} bytes exceeds {} bytes",
                ctx.limits.max_frame_bytes
            ),
            None,
        );
        conn.closing = true;
        return false;
    }
    let total = 8 + plen as usize + 8;
    if avail < total {
        return false;
    }
    let frame_bytes = conn.rbuf[conn.rpos..conn.rpos + total].to_vec();
    conn.rpos += total;
    let payload = match frame::decode(&frame_bytes) {
        Ok(p) => p.to_vec(),
        Err(e) => {
            // A checksum failure means corruption in flight — close
            // rather than trust the stream again.
            metrics.bump(&metrics.errors);
            queue_reply(conn, &format!("ERR bad frame: {e}"), None);
            conn.closing = true;
            return false;
        }
    };
    // Frame payload = request line [+ '\n' + raw body].
    let (line_bytes, body) = match payload.iter().position(|&b| b == b'\n') {
        Some(i) => (&payload[..i], Some(payload[i + 1..].to_vec())),
        None => (&payload[..], None),
    };
    let line = String::from_utf8_lossy(line_bytes).into_owned();
    if line.trim().is_empty() {
        return true;
    }
    let req = match parse_request(&line) {
        Ok(req) => req,
        Err(e) => {
            metrics.bump(&metrics.errors);
            queue_reply(conn, &format!("ERR {e}"), None);
            *count += 1;
            return true;
        }
    };
    let matches_announcement = match (req.body_bytes(), &body) {
        (Some(n), Some(b)) => b.len() == n,
        (None, None) => true,
        _ => false,
    };
    if !matches_announcement {
        metrics.bump(&metrics.errors);
        queue_reply(
            conn,
            "ERR frame body does not match the line's bytes=<n> announcement",
            None,
        );
        *count += 1;
        return true;
    }
    dispatch(conn, req, body, ctx, metrics);
    *count += 1;
    true
}

/// Runs one parsed request through the transport-independent
/// dispatcher and queues its reply in the connection's current mode.
fn dispatch(conn: &mut Conn, req: Request, body: Option<Vec<u8>>, ctx: &LoopCtx, metrics: &Metrics) {
    let hello_ok = matches!(&req, Request::Hello { proto } if proto == WIRE_PROTO);
    let reply = respond(
        req,
        body.as_deref(),
        &ctx.registry,
        &ctx.host,
        ctx.cluster.as_deref(),
        &ctx.cancel,
    );
    // The HELLO acknowledgement itself goes out in the connection's
    // *current* mode; everything after it is framed.
    queue_reply(conn, &reply.line, reply.body.as_deref());
    if hello_ok {
        conn.framed = true;
        metrics.bump(&metrics.hellos);
    }
    if reply.shutdown {
        conn.closing = true;
        conn.shutdown_after_flush = true;
    }
}

/// Appends one reply to the write buffer — raw line + body in text
/// mode, one `SKYWIRE01` frame wrapping the identical bytes in framed
/// mode.
fn queue_reply(conn: &mut Conn, line: &str, body: Option<&[u8]>) {
    if conn.framed {
        let mut payload =
            Vec::with_capacity(line.len() + 1 + body.map_or(0, |b| b.len()));
        payload.extend_from_slice(line.as_bytes());
        if let Some(b) = body {
            payload.push(b'\n');
            payload.extend_from_slice(b);
        }
        conn.wbuf.extend_from_slice(&frame::encode(&payload));
    } else {
        conn.wbuf.extend_from_slice(line.as_bytes());
        conn.wbuf.push(b'\n');
        if let Some(b) = body {
            conn.wbuf.extend_from_slice(b);
        }
    }
}

/// Writes queued response bytes until the socket would block or the
/// buffer drains.
fn flush_conn(conn: &mut Conn, metrics: &Metrics) {
    // lint: allow(R2) -- writes until WouldBlock; bounded by wbuf
    loop {
        if conn.wpos >= conn.wbuf.len() {
            break;
        }
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.closing = true;
                conn.wbuf.clear();
                conn.wpos = 0;
                break;
            }
            Ok(n) => {
                conn.wpos += n;
                metrics.add(&metrics.bytes_out, n as u64);
                conn.last_write = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.closing = true;
                conn.wbuf.clear();
                conn.wpos = 0;
                break;
            }
        }
    }
    if conn.wpos > 0 && conn.wpos >= conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
}

/// Keeps the poller registration in sync with whether the connection
/// has unflushed response bytes.
fn update_interest(poller: &mut Poller, conn: &mut Conn, token: u64) {
    let want = conn.wpos < conn.wbuf.len();
    if want != conn.want_write {
        let interest = if want { Interest::BOTH } else { Interest::READ };
        if poller
            .modify(conn.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            conn.want_write = want;
        }
    }
}

/// Deregisters, drops (closes) and — if this connection carried
/// `SHUTDOWN` — flips the server-wide flag and cancels in-flight work.
fn close_conn(
    poller: &mut Poller,
    conns: &mut [Option<Conn>],
    idx: usize,
    shutdown: &AtomicBool,
    cancel: &CancelToken,
) {
    if let Some(slot) = conns.get_mut(idx) {
        if let Some(conn) = slot.take() {
            let _ = poller.deregister(conn.stream.as_raw_fd());
            if conn.shutdown_after_flush {
                shutdown.store(true, Ordering::Release);
                cancel.cancel();
            }
        }
    }
}

/// The per-tick deadline sweep: sheds connections that completed no
/// request within the read deadline (idlers *and* slow-loris
/// dribblers), connections that stopped draining their responses, and
/// expires the `SHUTDOWN` flush grace.
fn sweep_deadlines(
    poller: &mut Poller,
    conns: &mut [Option<Conn>],
    limits: &ConnLimits,
    metrics: &Metrics,
    shutdown: &AtomicBool,
    cancel: &CancelToken,
) {
    let now = Instant::now();
    for idx in 0..conns.len() {
        let mut close = false;
        if let Some(Some(conn)) = conns.get_mut(idx) {
            if conn.shutdown_after_flush {
                // Deliver the SHUTDOWN reply if the client reads it;
                // give up (and shut down anyway) after a short grace.
                if now.duration_since(conn.last_write) > Duration::from_secs(1) {
                    close = true;
                }
            } else if (limits.read_timeout_ms > 0
                && now.duration_since(conn.last_progress)
                    > Duration::from_millis(limits.read_timeout_ms))
                || (limits.write_timeout_ms > 0
                    && conn.wpos < conn.wbuf.len()
                    && now.duration_since(conn.last_write)
                        > Duration::from_millis(limits.write_timeout_ms))
            {
                metrics.bump(&metrics.conns_shed);
                close = true;
            }
        }
        if close {
            close_conn(poller, conns, idx, shutdown, cancel);
        }
    }
}

// ---------------------------------------------------------------------
// Request dispatch (transport-independent)
// ---------------------------------------------------------------------

/// One response: the status line, an optional raw body (announced by a
/// `bytes=<n>` token inside the line's payload), and the shutdown flag.
struct Reply {
    line: String,
    body: Option<Vec<u8>>,
    shutdown: bool,
}

impl Reply {
    /// A body-less response line.
    fn line(line: String) -> Reply {
        Reply {
            line,
            body: None,
            shutdown: false,
        }
    }
}

/// Dispatches one parsed request (body already read off the wire).
fn respond(
    req: Request,
    body: Option<&[u8]>,
    registry: &Registry,
    host: &ShardHost,
    cluster: Option<&ClusterState>,
    cancel: &CancelToken,
) -> Reply {
    let metrics = Arc::clone(registry.metrics());
    let err = |e: String| {
        metrics.bump(&metrics.errors);
        Reply::line(format!("ERR {e}"))
    };
    match req {
        Request::Load { name, path } => {
            let result = match cluster {
                Some(cs) => cs.load(registry, &name, &path),
                None => registry
                    .load_path(&name, &path)
                    .map(|(points, dims)| format!("dataset={name} points={points} dims={dims}")),
            };
            match result {
                Ok(payload) => {
                    metrics.bump(&metrics.loads);
                    Reply::line(format!("OK {payload}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Append { name, path } => {
            let result =
                match cluster {
                    Some(cs) => cs.append(registry, &name, &path),
                    None => registry.append_path(&name, &path).map(
                        |(points, dims, shards, appended)| {
                            format!(
                                "dataset={name} points={points} dims={dims} \
                             shards={shards} appended={appended}"
                            )
                        },
                    ),
                };
            match result {
                Ok(payload) => {
                    metrics.bump(&metrics.appends);
                    Reply::line(format!("OK {payload}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Query(q) => {
            let t0 = Instant::now();
            match answer_query(&q, registry, cluster, cancel) {
                Ok(json) => {
                    metrics.bump(&metrics.queries);
                    metrics
                        .latency
                        .record_micros(t0.elapsed().as_micros() as u64);
                    Reply::line(format!("OK {json}"))
                }
                Err(e) => err(e),
            }
        }
        Request::Batch(b) => match answer_batch(&b, registry, cluster, cancel) {
            Ok(json) => {
                metrics.bump(&metrics.batches);
                metrics.add(&metrics.batch_items, b.items.len() as u64);
                Reply::line(format!("OK {json}"))
            }
            Err(e) => err(e),
        },
        Request::Hello { proto } => {
            // The mode flip itself happens in the connection layer
            // (it owns the framing state); this just acknowledges.
            if proto == WIRE_PROTO {
                Reply::line(format!("OK proto={WIRE_PROTO}"))
            } else {
                err(format!("unsupported proto {proto:?} (want {WIRE_PROTO})"))
            }
        }
        Request::Stats => match cluster {
            Some(cs) => Reply::line(format!("OK {}", cs.stats_rollup(registry))),
            None => Reply::line(format!("OK {}", registry.stats_json())),
        },
        Request::Snapshot => match registry.store_snapshot() {
            Ok(persisted) => Reply::line(format!("OK persisted={persisted}")),
            Err(e) => err(e),
        },
        Request::Restore => match registry.store_restore() {
            Ok(r) => Reply::line(format!(
                "OK artifacts={} quarantined={} removed_temps={}",
                r.valid, r.quarantined, r.removed_temps
            )),
            Err(e) => err(e),
        },
        Request::Join { addr } => match cluster {
            Some(cs) => match cs.join(registry, &addr) {
                Ok(payload) => Reply::line(format!("OK {payload}")),
                Err(e) => err(e),
            },
            None => err("not a coordinator (start with --workers)".to_string()),
        },
        Request::Leave { addr } => match cluster {
            Some(cs) => match cs.leave(registry, &addr) {
                Ok(payload) => Reply::line(format!("OK {payload}")),
                Err(e) => err(e),
            },
            None => err("not a coordinator (start with --workers)".to_string()),
        },
        Request::ShardPut {
            name,
            shard,
            base,
            replace,
            ..
        } => match host.shardput(&name, shard, base, replace, body.unwrap_or_default()) {
            Ok(payload) => Reply::line(format!("OK {payload}")),
            Err(e) => err(e),
        },
        Request::Fold {
            dataset,
            hash,
            shard,
            shard_hash,
            prefs,
            t,
            seed,
            max_dominance_tests,
            timeout_ms,
            ..
        } => match host.fold(
            &dataset,
            hash,
            shard,
            shard_hash,
            &prefs,
            t,
            seed,
            max_dominance_tests,
            timeout_ms,
            body.unwrap_or_default(),
            cancel,
        ) {
            Ok((header, frame)) => Reply {
                line: format!("OK {header}"),
                body: Some(frame),
                shutdown: false,
            },
            Err(e) => err(e),
        },
        Request::Fetch {
            name,
            hash,
            shard,
            prefs,
            t,
            seed,
        } => match host.fetch(&name, hash, shard, &prefs, t, seed) {
            Ok((header, frame)) => Reply {
                line: format!("OK {header}"),
                body: frame,
                shutdown: false,
            },
            Err(e) => err(e),
        },
        Request::Replicate {
            name,
            hash,
            shard,
            prefs,
            t,
            seed,
            from,
        } => match host.replicate(&name, hash, shard, &prefs, t, seed, &from) {
            Ok(payload) => Reply::line(format!("OK {payload}")),
            Err(e) => err(e),
        },
        Request::Shutdown => Reply {
            line: "OK shutting down".to_string(),
            body: None,
            shutdown: true,
        },
    }
}

/// Builds the per-request budget: client limits + the server-wide
/// cancellation token.
fn request_budget(q: &QuerySpec, cancel: &CancelToken) -> RunBudget {
    let mut budget = RunBudget::none().with_cancel_token(cancel.clone());
    if let Some(ms) = q.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = q.max_dominance_tests {
        budget = budget.with_max_dominance_tests(n);
    }
    budget
}

/// Renders the one-line `QUERY` JSON payload. `BATCH` items go through
/// the same renderer so a batch reply is byte-identical, field for
/// field, to the equivalent stand-alone queries.
#[allow(clippy::too_many_arguments)]
fn render_query_json(
    dataset: &str,
    k: usize,
    method: &Method,
    cached: bool,
    skyline_len: usize,
    selected: &[usize],
    gamma: &[u64],
    fingerprint_ms: f64,
    selection_ms: f64,
    total_ms: f64,
    memory_bytes: usize,
    dominance_tests: u64,
    degradation: &Degradation,
) -> String {
    let selected_json: Vec<String> = selected.iter().map(|i| i.to_string()).collect();
    let gamma_json: Vec<String> = gamma.iter().map(|g| g.to_string()).collect();
    format!(
        concat!(
            "{{\"dataset\":\"{}\",\"k\":{},\"method\":\"{}\",\"cached\":{},",
            "\"skyline\":{},\"selected\":[{}],\"gamma\":[{}],",
            "\"fingerprint_ms\":{:.3},\"selection_ms\":{:.3},\"total_ms\":{:.3},",
            "\"memory_bytes\":{},\"dominance_tests\":{},",
            "\"degraded\":{},\"status\":\"{}\"}}"
        ),
        json_escape(dataset),
        k,
        method.token(),
        cached,
        skyline_len,
        selected_json.join(","),
        gamma_json.join(","),
        fingerprint_ms,
        selection_ms,
        total_ms,
        memory_bytes,
        dominance_tests,
        degradation.is_degraded(),
        json_escape(&degradation.summary()),
    )
}

/// Memo key component for a selection method, parameters included —
/// [`Method::token`] alone would conflate distinct LSH configurations.
fn method_key(method: &Method) -> String {
    match method {
        Method::Lsh { xi, buckets } => format!("lsh:{xi}:{buckets}"),
        other => other.token().to_string(),
    }
}

/// Answers a `QUERY`: signature methods go through the fingerprint
/// cache + [`SkyDiver::select_from`]; the exact `greedy` baseline
/// recomputes dominated sets per query (never cached). Budget-free
/// repeats of an identical query are served from the per-dataset
/// selection memo without re-running the selection — the memo only
/// holds undegraded runs over complete fingerprints, so a hit differs
/// from the recompute in timing fields alone. On a coordinator the
/// fingerprint comes from the cluster fan-out — merged to the same
/// bits, so selection (and the response payload) is identical to the
/// single-process answer.
fn answer_query(
    q: &QuerySpec,
    registry: &Registry,
    cluster: Option<&ClusterState>,
    cancel: &CancelToken,
) -> Result<String, String> {
    let t0 = Instant::now();
    let ds = registry
        .dataset(&q.dataset)
        .ok_or_else(|| format!("unknown dataset {:?} (LOAD it first)", q.dataset))?;
    let (prefs, prefs_key) = parse_prefs(q.prefs.as_deref(), ds.data.dims())?;
    let budget = request_budget(q, cancel);
    let metrics = Arc::clone(registry.metrics());

    #[allow(clippy::type_complexity)]
    let (
        skyline_len,
        selected,
        gamma,
        fingerprint_ms,
        selection_ms,
        memory_bytes,
        cached,
        dominance_tests,
        degradation,
    ): (
        usize,
        Vec<usize>,
        Vec<u64>,
        f64,
        f64,
        usize,
        bool,
        u64,
        Degradation,
    ) = match q.method {
        Method::Greedy => {
            let whole = ds.whole();
            let (skyline_len, selected, gamma, selection_ms, degradation) =
                answer_exact(q, &whole, &prefs, budget)?;
            (
                skyline_len,
                selected,
                gamma,
                0.0,
                selection_ms,
                0usize,
                false,
                0,
                degradation,
            )
        }
        Method::MinHash | Method::Lsh { .. } => {
            let unbudgeted = q.timeout_ms.is_none() && q.max_dominance_tests.is_none();
            let sel_key = (prefs_key.clone(), q.t, q.seed, q.k, method_key(&q.method));
            if let Some(m) = unbudgeted.then(|| ds.selection_get(&sel_key)).flatten() {
                // A memoised selection implies the memoised fingerprint,
                // so this is a cache hit in the warm-query sense too.
                metrics.bump(&metrics.cache_hits);
                metrics.bump(&metrics.selection_hits);
                let total_ms = t0.elapsed().as_secs_f64() * 1e3;
                return Ok(render_query_json(
                    &q.dataset,
                    q.k,
                    &q.method,
                    true,
                    m.skyline_len,
                    &m.selected,
                    &m.gamma,
                    0.0,
                    0.0,
                    total_ms,
                    m.memory_bytes,
                    0,
                    &Degradation {
                        interrupt: None,
                        events: vec![],
                    },
                ));
            }
            let (fp, cached, dominance_tests) = match cluster {
                Some(cs) => cs.fingerprint(
                    registry,
                    &q.dataset,
                    &prefs,
                    &prefs_key,
                    q.t,
                    q.seed,
                    budget.clone(),
                    q.max_dominance_tests,
                    q.timeout_ms,
                )?,
                None => registry.fingerprint(
                    &q.dataset,
                    &prefs,
                    &prefs_key,
                    q.t,
                    q.seed,
                    budget.clone(),
                )?,
            };
            let mut diver = SkyDiver::new(q.k)
                .signature_size(q.t)
                .hash_seed(q.seed)
                .budget(budget);
            if let Method::Lsh { xi, buckets } = q.method {
                diver = diver.lsh(xi, buckets);
            }
            let r = diver.select_from(&fp).map_err(|e| e.to_string())?;
            let gamma: Vec<u64> = r.selected_positions.iter().map(|&p| r.scores[p]).collect();
            if unbudgeted && fp.is_complete() && !r.degradation.is_degraded() {
                ds.selection_put(
                    sel_key,
                    Arc::new(SelectionMemo {
                        skyline_len: r.skyline.len(),
                        selected: r.selected.clone(),
                        gamma: gamma.clone(),
                        memory_bytes: r.memory_bytes,
                    }),
                );
            }
            // A cache hit charges no fingerprinting (and no dominance
            // tests) to this request.
            let fingerprint_ms = if cached { 0.0 } else { r.fingerprint_ms };
            (
                r.skyline.len(),
                r.selected,
                gamma,
                fingerprint_ms,
                r.selection_ms,
                r.memory_bytes,
                cached,
                dominance_tests,
                r.degradation,
            )
        }
    };

    if degradation.is_degraded() {
        metrics.bump(&metrics.degraded);
    }
    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    Ok(render_query_json(
        &q.dataset,
        q.k,
        &q.method,
        cached,
        skyline_len,
        &selected,
        &gamma,
        fingerprint_ms,
        selection_ms,
        total_ms,
        memory_bytes,
        dominance_tests,
        &degradation,
    ))
}

/// Answers a `BATCH`: resolves the shared fingerprint once (cache,
/// cluster fan-out, or cold compute) and runs every `(k, method)`
/// selection against it. Per-item `cached`/`dominance_tests` fields
/// report what the equivalent sequence of stand-alone `QUERY`s would
/// have reported: item 0 carries the resolution's flags; later items
/// are cache hits when the fingerprint is complete (it was memoised),
/// and deterministic recomputes (same flags as item 0) when a budget
/// trip left it partial.
fn answer_batch(
    b: &BatchSpec,
    registry: &Registry,
    cluster: Option<&ClusterState>,
    cancel: &CancelToken,
) -> Result<String, String> {
    if b.items.is_empty() {
        return Err("BATCH requires at least one spec".to_string());
    }
    let ds = registry
        .dataset(&b.dataset)
        .ok_or_else(|| format!("unknown dataset {:?} (LOAD it first)", b.dataset))?;
    let (prefs, prefs_key) = parse_prefs(b.prefs.as_deref(), ds.data.dims())?;
    let mut budget = RunBudget::none().with_cancel_token(cancel.clone());
    if let Some(ms) = b.timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(n) = b.max_dominance_tests {
        budget = budget.with_max_dominance_tests(n);
    }
    let metrics = Arc::clone(registry.metrics());
    let (fp, resolved_cached, resolved_tests) = match cluster {
        Some(cs) => cs.fingerprint(
            registry,
            &b.dataset,
            &prefs,
            &prefs_key,
            b.t,
            b.seed,
            budget.clone(),
            b.max_dominance_tests,
            b.timeout_ms,
        )?,
        None => registry.fingerprint(&b.dataset, &prefs, &prefs_key, b.t, b.seed, budget.clone())?,
    };
    let complete = fp.is_complete();
    let unbudgeted = b.timeout_ms.is_none() && b.max_dominance_tests.is_none();
    let mut results = Vec::with_capacity(b.items.len());
    for (i, &(k, method)) in b.items.iter().enumerate() {
        let it0 = Instant::now();
        let sel_key = (prefs_key.clone(), b.t, b.seed, k, method_key(&method));
        // Budget-free items over a memoised complete fingerprint can be
        // served straight from the selection memo — the flags below
        // already describe a warm recompute, so the reply is identical
        // (timing fields aside). Item 0 of a cold resolution must carry
        // the resolution's charge, so it never takes this path.
        if let Some(m) = (unbudgeted && complete && (resolved_cached || i > 0))
            .then(|| ds.selection_get(&sel_key))
            .flatten()
        {
            metrics.bump(&metrics.selection_hits);
            let cached = if i == 0 { resolved_cached } else { complete };
            let tests = if i == 0 { resolved_tests } else { 0 };
            let total_ms = it0.elapsed().as_secs_f64() * 1e3;
            results.push(render_query_json(
                &b.dataset,
                k,
                &method,
                cached,
                m.skyline_len,
                &m.selected,
                &m.gamma,
                0.0,
                0.0,
                total_ms,
                m.memory_bytes,
                tests,
                &Degradation {
                    interrupt: None,
                    events: vec![],
                },
            ));
            continue;
        }
        // Every selection runs under the shared batch budget.
        let mut diver = SkyDiver::new(k)
            .signature_size(b.t)
            .hash_seed(b.seed)
            .budget(budget.clone());
        if let Method::Lsh { xi, buckets } = method {
            diver = diver.lsh(xi, buckets);
        }
        let r = diver.select_from(&fp).map_err(|e| e.to_string())?;
        let cached = if i == 0 { resolved_cached } else { complete };
        let tests = if i == 0 || !complete { resolved_tests } else { 0 };
        let gamma: Vec<u64> = r.selected_positions.iter().map(|&p| r.scores[p]).collect();
        if unbudgeted && complete && !r.degradation.is_degraded() {
            ds.selection_put(
                sel_key,
                Arc::new(SelectionMemo {
                    skyline_len: r.skyline.len(),
                    selected: r.selected.clone(),
                    gamma: gamma.clone(),
                    memory_bytes: r.memory_bytes,
                }),
            );
        }
        let fingerprint_ms = if cached { 0.0 } else { r.fingerprint_ms };
        if r.degradation.is_degraded() {
            metrics.bump(&metrics.degraded);
        }
        let total_ms = it0.elapsed().as_secs_f64() * 1e3;
        results.push(render_query_json(
            &b.dataset,
            k,
            &method,
            cached,
            r.skyline.len(),
            &r.selected,
            &gamma,
            fingerprint_ms,
            r.selection_ms,
            total_ms,
            r.memory_bytes,
            tests,
            &r.degradation,
        ));
    }
    Ok(format!(
        "{{\"dataset\":\"{}\",\"batch\":{},\"results\":[{}]}}",
        json_escape(&b.dataset),
        results.len(),
        results.join(",")
    ))
}

/// The exact greedy baseline: dominated-set Jaccard distances over
/// explicit [`GammaSets`] — no signatures, no cache, per-query cost
/// `O(n · m)` like a cold fingerprint plus an exact selection.
#[allow(clippy::type_complexity)]
fn answer_exact(
    q: &QuerySpec,
    data: &skydiver_data::Dataset,
    prefs: &[skydiver_data::Preference],
    budget: RunBudget,
) -> Result<(usize, Vec<usize>, Vec<u64>, f64, Degradation), String> {
    let ctx = ExecContext::new(budget);
    let canon = canonicalise(data, prefs).map_err(|e| e.to_string())?;
    let skyline = sfs(canon.as_ref(), &MinDominance);
    if skyline.is_empty() {
        return Err("empty skyline".to_string());
    }
    let t0 = Instant::now();
    let gamma = GammaSets::build(canon.as_ref(), &MinDominance, &skyline);
    let scores = gamma.scores();
    let mut dist = ExactJaccardDistance::new(&gamma);
    let (positions, interrupt) = select_diverse_budgeted(
        &mut dist,
        &scores,
        q.k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
        &ctx,
    )
    .map_err(|e| e.to_string())?;
    let selection_ms = t0.elapsed().as_secs_f64() * 1e3;
    let selected: Vec<usize> = positions.iter().map(|&p| skyline[p]).collect();
    let gamma_scores: Vec<u64> = positions.iter().map(|&p| scores[p]).collect();
    let events = match &interrupt {
        Some(_) => vec![skydiver_core::DegradationEvent::SelectionCurtailed {
            selected: positions.len(),
            requested: q.k,
        }],
        None => vec![],
    };
    Ok((
        skyline.len(),
        selected,
        gamma_scores,
        selection_ms,
        Degradation { interrupt, events },
    ))
}
