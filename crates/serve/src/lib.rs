//! `skydiver-serve` — a long-lived diversification query service with
//! fingerprint reuse.
//!
//! The SkyDiver pipeline splits cleanly in two: *fingerprinting* (one
//! `O(n · m)` pass that MinHashes every skyline point's dominated set
//! into a [`SignatureMatrix`](skydiver_core::minhash::SignatureMatrix))
//! and *selection* (greedy max–min dispersion over those signatures,
//! cheap and `k`-dependent). The expensive artefact depends only on
//! `(dataset, preference subspace, t, seed)` — not on `k`, not on the
//! method — so a resident service can pay for it once and answer any
//! number of `QUERY k=… method=…` requests from the cached matrix.
//!
//! Layering:
//!
//! - [`protocol`] — the line-delimited wire format (`LOAD`, `QUERY`,
//!   `STATS`, `SHUTDOWN`) and its strict parser.
//! - [`cache`] — byte-bounded LRU over complete fingerprints.
//! - [`registry`] — named datasets + the shared cache; the
//!   signature-reuse contract lives in [`Registry::fingerprint`].
//! - [`metrics`] — lock-free counters and a fixed-bucket latency
//!   histogram behind `STATS`.
//! - [`store`] — the crash-safe on-disk signature store: atomic
//!   `SKYSIG02` artefacts keyed by dataset content hash, write-behind
//!   persistence, and a startup recovery sweep that quarantines
//!   corruption instead of serving it. Makes restarts warm
//!   (`SNAPSHOT` flushes, `RESTORE` re-sweeps).
//! - [`cluster`] — the distributed layer: a worker-side
//!   [`ShardHost`] every server carries (hosted
//!   shards + fold reuse) and a coordinator-side
//!   [`ClusterState`] that routes shards by
//!   rendezvous hashing, fans fingerprint folds out, and merges them
//!   to bits identical to the single-process run.
//! - [`poll`] — a hand-rolled readiness shim (`epoll` on Linux via
//!   direct FFI, portable `poll(2)` fallback) that keeps the std-only
//!   policy while letting one thread multiplex thousands of sockets.
//! - [`server`] / [`client`] — a nonblocking, readiness-driven event
//!   loop and its client counterpart. No async runtime: the build is
//!   offline and the state machines are hand-rolled over [`poll`].
//!   Connections support request **pipelining** (every complete
//!   request in the read buffer is answered, in order), an optional
//!   length-prefixed binary framing (`SKYWIRE01`, negotiated with
//!   `HELLO`), and a `BATCH` verb that amortises one fingerprint
//!   lookup across many `(k, method)` selections. Idle/stalled and
//!   slow-loris clients are shed by deadline sweeps instead of
//!   per-socket timeouts.
//!
//! Every query runs under a per-request
//! [`RunBudget`](skydiver_core::RunBudget) plus a server-wide
//! cancellation token, so slow queries degrade to partial results and
//! `SHUTDOWN` drains in-flight work promptly instead of hanging.

pub mod cache;
pub mod client;
pub mod cluster;
pub mod metrics;
pub mod poll;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod store;

pub use cache::{FingerprintCache, FingerprintKey};
pub use client::Client;
pub use cluster::{ClusterConfig, ClusterState, ShardHost};
pub use metrics::{LatencyHistogram, Metrics};
pub use poll::{Event, Interest, Poller};
pub use protocol::{parse_request, parse_response, BatchSpec, Method, QuerySpec, Request};
pub use registry::{parse_prefs, LoadedDataset, Registry};
pub use server::{Server, ServerConfig, ServerHandle};
pub use store::{
    content_hash, prefs_hash, DiskFault, FaultPlan, SignatureStore, StoreKey, SweepReport,
};
