//! Byte-bounded LRU cache of [`Fingerprint`] artefacts.
//!
//! The cache key is the full provenance of a signature matrix —
//! `(dataset, preference subspace, t, seed)` — so a hit is guaranteed to
//! reproduce, bit for bit, what re-fingerprinting would compute. Values
//! are `Arc`-shared: an entry may be evicted while queries still hold
//! it, eviction only drops the cache's own reference.
//!
//! Only *complete* fingerprints may be inserted: a budget-curtailed
//! matrix covers a prefix of the data and would silently poison every
//! later query with approximate-er-than-promised distances.

use std::collections::HashMap;
use std::sync::Arc;

use skydiver_core::Fingerprint;

/// Cache key: everything that determines the signature matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FingerprintKey {
    /// Registry name of the dataset.
    pub dataset: String,
    /// Canonical preference string (`"min,max,..."`).
    pub prefs: String,
    /// Signature size `t`.
    pub t: usize,
    /// Hash-family seed.
    pub seed: u64,
}

struct Entry {
    fp: Arc<Fingerprint>,
    bytes: usize,
    last_used: u64,
}

/// LRU fingerprint cache with a resident-byte ceiling.
///
/// Not internally synchronised — the registry wraps it in a `Mutex`.
/// Recency is a monotonic tick; eviction scans for the minimum, which is
/// O(entries) but entries are few (each is a whole `t × m` matrix).
pub struct FingerprintCache {
    ceiling: usize,
    map: HashMap<FingerprintKey, Entry>,
    bytes: usize,
    tick: u64,
    evictions: u64,
}

impl FingerprintCache {
    /// A cache holding at most `ceiling` resident bytes.
    pub fn new(ceiling: usize) -> Self {
        FingerprintCache {
            ceiling,
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// The configured byte ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached fingerprints.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a fingerprint, refreshing its recency on a hit.
    pub fn get(&mut self, key: &FingerprintKey) -> Option<Arc<Fingerprint>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.fp)
        })
    }

    /// Inserts a complete fingerprint, evicting least-recently-used
    /// entries until the ceiling is respected. Returns `false` (and
    /// caches nothing) if the fingerprint is partial or alone exceeds
    /// the ceiling; re-inserting an existing key refreshes the entry.
    pub fn insert(&mut self, key: FingerprintKey, fp: Arc<Fingerprint>) -> bool {
        if !fp.is_complete() {
            return false;
        }
        let bytes = fp.memory_bytes();
        if bytes > self.ceiling {
            return false;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.ceiling {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            let dropped = self.map.remove(&lru).expect("key just observed");
            self.bytes -= dropped.bytes;
            self.evictions += 1;
        }
        self.map.insert(key, Entry { fp, bytes, last_used: self.tick });
        self.bytes += bytes;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_core::minhash::{SigGenOutput, SignatureMatrix};

    fn key(name: &str, t: usize) -> FingerprintKey {
        FingerprintKey { dataset: name.into(), prefs: "min,min".into(), t, seed: 0 }
    }

    fn fp(t: usize, m: usize) -> Arc<Fingerprint> {
        Arc::new(Fingerprint {
            skyline: (0..m).collect(),
            output: SigGenOutput {
                matrix: SignatureMatrix::new(t, m),
                scores: vec![1; m],
            },
            fingerprint_ms: 0.0,
            events: vec![],
            interrupt: None,
        })
    }

    #[test]
    fn hit_miss_and_byte_accounting() {
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.get(&key("a", 8)).is_none());
        let f = fp(8, 10);
        let bytes = f.memory_bytes();
        assert!(c.insert(key("a", 8), f));
        assert_eq!(c.bytes(), bytes);
        assert!(c.get(&key("a", 8)).is_some());
        assert!(c.get(&key("a", 16)).is_none(), "t is part of the key");
        assert!(c.get(&key("b", 8)).is_none(), "dataset is part of the key");
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        let one = fp(8, 10).memory_bytes();
        // Room for exactly two entries.
        let mut c = FingerprintCache::new(2 * one);
        assert!(c.insert(key("a", 8), fp(8, 10)));
        assert!(c.insert(key("b", 8), fp(8, 10)));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a", 8)).is_some());
        assert!(c.insert(key("c", 8), fp(8, 10)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key("a", 8)).is_some());
        assert!(c.get(&key("b", 8)).is_none(), "LRU entry evicted");
        assert!(c.get(&key("c", 8)).is_some());
        assert!(c.bytes() <= c.ceiling());
    }

    #[test]
    fn oversized_and_partial_entries_are_refused() {
        let mut c = FingerprintCache::new(64);
        assert!(!c.insert(key("big", 64), fp(64, 64)));
        assert_eq!(c.len(), 0);
        let mut partial = Fingerprint::clone(&fp(2, 2));
        partial.interrupt = Some(skydiver_core::Interrupt {
            phase: skydiver_core::ExecPhase::Fingerprint,
            reason: skydiver_core::StopReason::Cancelled,
        });
        let mut c = FingerprintCache::new(1 << 20);
        assert!(!c.insert(key("p", 2), Arc::new(partial)));
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.insert(key("a", 8), fp(8, 10)));
        let b1 = c.bytes();
        assert!(c.insert(key("a", 8), fp(8, 10)));
        assert_eq!(c.bytes(), b1);
        assert_eq!(c.len(), 1);
    }
}
