//! Byte-bounded LRU cache of per-shard signature folds.
//!
//! The cache key is the full provenance of one shard's fold —
//! `(dataset, shard, preference subspace, t, seed)` — so a hit is
//! guaranteed to reproduce, bit for bit, what re-scanning the shard
//! would compute. Values are `Arc`-shared
//! [`ShardFingerprint`]s: an entry may be evicted while the registry's
//! assembled fingerprints still hold it, eviction only drops the
//! cache's own reference.
//!
//! Keying per shard (not per whole dataset) is what makes `APPEND`
//! incremental: appending a shard leaves every old shard's entries
//! valid — shards are immutable and row ids global — so the next query
//! re-scans only the new shard (plus old shards for newly exposed
//! skyline columns) and merges the rest from here.
//!
//! Only *complete* folds may live here: the registry never inserts the
//! shards of a budget-curtailed run (such runs return no shard folds at
//! all), because a partial fold would silently poison every later query
//! with approximate-er-than-promised distances.

use std::collections::HashMap;
use std::sync::Arc;

use skydiver_core::ShardFingerprint;

/// Cache key: everything that determines one shard's signature fold.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FingerprintKey {
    /// Registry name of the dataset.
    pub dataset: String,
    /// Shard index within the dataset.
    pub shard: usize,
    /// Canonical preference string (`"min,max,..."`).
    pub prefs: String,
    /// Signature size `t`.
    pub t: usize,
    /// Hash-family seed.
    pub seed: u64,
}

struct Entry {
    fp: Arc<ShardFingerprint>,
    bytes: usize,
    last_used: u64,
}

/// LRU shard-fold cache with a resident-byte ceiling.
///
/// Not internally synchronised — the registry wraps it in a `Mutex`.
/// Recency is a monotonic tick; eviction scans for the minimum, which is
/// O(entries) but entries are few (each is a whole `t × m` matrix).
pub struct FingerprintCache {
    ceiling: usize,
    map: HashMap<FingerprintKey, Entry>,
    bytes: usize,
    tick: u64,
    evictions: u64,
}

impl FingerprintCache {
    /// A cache holding at most `ceiling` resident bytes.
    pub fn new(ceiling: usize) -> Self {
        FingerprintCache {
            ceiling,
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            evictions: 0,
        }
    }

    /// The configured byte ceiling.
    pub fn ceiling(&self) -> usize {
        self.ceiling
    }

    /// Bytes currently resident.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Number of cached shard folds.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a shard fold, refreshing its recency on a hit.
    pub fn get(&mut self, key: &FingerprintKey) -> Option<Arc<ShardFingerprint>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.fp)
        })
    }

    /// Inserts a complete shard fold, evicting least-recently-used
    /// entries until the ceiling is respected. Returns `false` (and
    /// caches nothing) if the fold alone exceeds the ceiling;
    /// re-inserting an existing key refreshes the entry.
    pub fn insert(&mut self, key: FingerprintKey, fp: Arc<ShardFingerprint>) -> bool {
        let bytes = fp.memory_bytes();
        if bytes > self.ceiling {
            return false;
        }
        self.tick += 1;
        if let Some(old) = self.map.remove(&key) {
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.ceiling {
            let Some(lru) = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            else {
                break;
            };
            // lint: allow(R1) -- `lru` was produced by iterating the map
            // two lines up under `&mut self`; it cannot have vanished
            let dropped = self.map.remove(&lru).expect("key just observed");
            self.bytes -= dropped.bytes;
            self.evictions += 1;
        }
        self.map.insert(key, Entry { fp, bytes, last_used: self.tick });
        self.bytes += bytes;
        true
    }

    /// Drops every fold of `dataset` (all shards, all preference/t/seed
    /// coordinates) — the `LOAD`-replaces-dataset path, where the old
    /// shards no longer describe the registered data. Returns how many
    /// entries were dropped (not counted as evictions: nothing was
    /// displaced by pressure).
    pub fn invalidate_dataset(&mut self, dataset: &str) -> usize {
        let doomed: Vec<FingerprintKey> = self
            .map
            .keys()
            .filter(|k| k.dataset == dataset)
            .cloned()
            .collect();
        for k in &doomed {
            // lint: allow(R1) -- `doomed` keys were just collected from the
            // map under `&mut self`; removal cannot miss
            let e = self.map.remove(k).expect("key just observed");
            self.bytes -= e.bytes;
        }
        doomed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_core::SignatureAccumulator;

    fn key(name: &str, shard: usize, t: usize) -> FingerprintKey {
        FingerprintKey {
            dataset: name.into(),
            shard,
            prefs: "min,min".into(),
            t,
            seed: 0,
        }
    }

    fn fold(t: usize, m: usize) -> Arc<ShardFingerprint> {
        Arc::new(ShardFingerprint {
            columns: (0..m).collect(),
            acc: SignatureAccumulator::new(t, m),
        })
    }

    #[test]
    fn hit_miss_and_byte_accounting() {
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.get(&key("a", 0, 8)).is_none());
        let f = fold(8, 10);
        let bytes = f.memory_bytes();
        assert!(c.insert(key("a", 0, 8), f));
        assert_eq!(c.bytes(), bytes);
        assert!(c.get(&key("a", 0, 8)).is_some());
        assert!(c.get(&key("a", 1, 8)).is_none(), "shard is part of the key");
        assert!(c.get(&key("a", 0, 16)).is_none(), "t is part of the key");
        assert!(c.get(&key("b", 0, 8)).is_none(), "dataset is part of the key");
    }

    #[test]
    fn charged_bytes_pin_the_fingerprint_formula() {
        // The ceiling maths only works if the charge per entry is the
        // exact closed form of the fold's layout: t·m·8 for the
        // column-major matrix, m·8 for the score vector, |columns|·8
        // for the global-id map. Nothing else — in particular not the
        // slot-major transpose, which is selection-time-only and never
        // lives in a cached fold.
        let (t, m) = (8usize, 10usize);
        let f = fold(t, m);
        let formula = t * m * 8 + m * 8 + m * 8;
        assert_eq!(f.memory_bytes(), formula);
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.insert(key("a", 0, t), f));
        assert_eq!(c.bytes(), formula);
        assert!(c.insert(key("a", 1, t), fold(t, m)));
        assert_eq!(c.bytes(), 2 * formula);
        assert_eq!(c.invalidate_dataset("a"), 2);
        assert_eq!(c.bytes(), 0, "every charged byte is returned");
    }

    #[test]
    fn evicts_least_recently_used_under_pressure() {
        let one = fold(8, 10).memory_bytes();
        // Room for exactly two entries.
        let mut c = FingerprintCache::new(2 * one);
        assert!(c.insert(key("a", 0, 8), fold(8, 10)));
        assert!(c.insert(key("b", 0, 8), fold(8, 10)));
        // Touch "a" so "b" becomes the LRU victim.
        assert!(c.get(&key("a", 0, 8)).is_some());
        assert!(c.insert(key("c", 0, 8), fold(8, 10)));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&key("a", 0, 8)).is_some());
        assert!(c.get(&key("b", 0, 8)).is_none(), "LRU entry evicted");
        assert!(c.get(&key("c", 0, 8)).is_some());
        assert!(c.bytes() <= c.ceiling());
    }

    #[test]
    fn oversized_entries_are_refused() {
        let mut c = FingerprintCache::new(64);
        assert!(!c.insert(key("big", 0, 64), fold(64, 64)));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn reinsert_replaces_without_double_counting() {
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.insert(key("a", 0, 8), fold(8, 10)));
        let b1 = c.bytes();
        assert!(c.insert(key("a", 0, 8), fold(8, 10)));
        assert_eq!(c.bytes(), b1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_drops_every_shard_of_one_dataset() {
        let mut c = FingerprintCache::new(1 << 20);
        assert!(c.insert(key("a", 0, 8), fold(8, 10)));
        assert!(c.insert(key("a", 1, 8), fold(8, 10)));
        assert!(c.insert(key("a", 0, 16), fold(16, 10)));
        assert!(c.insert(key("b", 0, 8), fold(8, 10)));
        let other = fold(8, 10).memory_bytes();
        assert_eq!(c.invalidate_dataset("a"), 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), other);
        assert_eq!(c.evictions(), 0, "invalidation is not eviction");
        assert!(c.get(&key("b", 0, 8)).is_some());
        assert_eq!(c.invalidate_dataset("ghost"), 0);
    }
}
