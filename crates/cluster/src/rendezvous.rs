//! Rendezvous (highest-random-weight) shard ownership.
//!
//! Every shard is owned by the `r` nodes with the highest
//! `weight(node, shard)` score, where the weight is a deterministic hash
//! of the `(node, shard)` pair. Any participant that knows the node
//! roster computes the same owner list with no coordination, and when a
//! node joins or leaves only the shards whose top-`r` set actually
//! changed move — the minimal-disruption property that makes handoff
//! cheap.

/// FNV-1a 64-bit over `bytes`, seeded so shard and node mix fully.
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in bytes {
        // lint: allow(R2) -- hashes one node address (tens of bytes);
        // pure election arithmetic, no cancellation point needed
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // Final avalanche (splitmix64 tail) so nearby shard ids decorrelate.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Deterministic weight of `node` for `shard`. Public so tests and the
/// serve layer can reason about tie-breaks directly.
pub fn weight(node: &str, shard: usize) -> u64 {
    fnv1a(shard as u64, node.as_bytes())
}

/// The `r` owners of `shard` drawn from `nodes`, best-weight first.
///
/// Ties (astronomically unlikely with 64-bit weights, but possible) break
/// on the node string so the order is total. If `r >= nodes.len()` every
/// node owns the shard. Returns an empty vector for an empty roster.
pub fn owners(nodes: &[String], shard: usize, r: usize) -> Vec<String> {
    let mut scored: Vec<(u64, &String)> = nodes.iter().map(|n| (weight(n, shard), n)).collect();
    scored.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
    scored
        .into_iter()
        .take(r.max(1))
        .map(|(_, n)| n.clone())
        .collect()
}

/// Full ownership map: `map[s]` lists the owners of shard `s`.
pub fn ownership_map(nodes: &[String], shards: usize, r: usize) -> Vec<Vec<String>> {
    (0..shards).map(|s| owners(nodes, s, r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn ownership_is_deterministic_and_order_free() {
        let a = roster(&["w1", "w2", "w3"]);
        let b = roster(&["w3", "w1", "w2"]);
        for s in 0..64 {
            assert_eq!(owners(&a, s, 2), owners(&b, s, 2));
        }
    }

    #[test]
    fn replication_caps_at_roster_size() {
        let n = roster(&["a", "b"]);
        assert_eq!(owners(&n, 7, 5).len(), 2);
        assert!(owners(&[], 7, 2).is_empty());
    }

    #[test]
    fn owners_are_distinct_nodes() {
        let n = roster(&["a", "b", "c", "d"]);
        for s in 0..32 {
            let own = owners(&n, s, 3);
            let mut dedup = own.clone();
            dedup.dedup();
            assert_eq!(own.len(), 3);
            assert_eq!(dedup.len(), 3);
        }
    }

    #[test]
    fn join_moves_only_a_fraction_of_shards() {
        let before = roster(&["w1", "w2", "w3", "w4"]);
        let mut after = before.clone();
        after.push("w5".to_string());
        let shards = 256;
        let moved = (0..shards)
            .filter(|&s| owners(&before, s, 1) != owners(&after, s, 1))
            .count();
        // HRW moves ~1/5 of shards on a 4→5 join; assert well under half.
        assert!(moved > 0 && moved < shards / 2, "moved {moved}");
    }

    #[test]
    fn spread_is_roughly_balanced() {
        let n = roster(&["w1", "w2", "w3", "w4"]);
        let shards = 400;
        let mut counts = std::collections::HashMap::new();
        for s in 0..shards {
            for o in owners(&n, s, 1) {
                *counts.entry(o).or_insert(0usize) += 1;
            }
        }
        for (_, c) in counts {
            assert!(c > shards / 10, "owner starved: {c}");
        }
    }
}
