//! A single deadline budget shared across every leg of one fan-out.
//!
//! Before this existed the serve layer applied `--read-timeout-ms`
//! per *connection*, so a coordinator that talked to K workers in turn
//! could spend K × timeout on one request. [`DeadlineBudget`] is created
//! once per request; every coordinator→worker leg (connect, write, read
//! — including retries on a replica) asks it for the *remaining* time
//! and gets socket timeouts cut to fit. When the budget is exhausted the
//! remaining legs fail fast and the request degrades instead of
//! stalling.

use std::time::{Duration, Instant};

/// An absolute deadline shared by all legs of one fan-out.
///
/// Cloning is cheap and preserves the absolute deadline, so each leg
/// (possibly on its own thread) can carry a copy.
#[derive(Debug, Clone, Copy)]
pub struct DeadlineBudget {
    start: Instant,
    total: Duration,
}

impl DeadlineBudget {
    /// Start a budget of `total` from now.
    pub fn new(total: Duration) -> Self {
        DeadlineBudget {
            start: Instant::now(),
            total,
        }
    }

    /// Start a budget of `ms` milliseconds from now.
    pub fn from_millis(ms: u64) -> Self {
        Self::new(Duration::from_millis(ms))
    }

    /// Time spent since the budget started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Time left, or `None` once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        let used = self.start.elapsed();
        if used >= self.total {
            None
        } else {
            Some(self.total - used)
        }
    }

    /// Milliseconds left, rounded up so a still-live budget never maps
    /// to 0 (which socket APIs treat as "no timeout"). `None` once
    /// expired.
    pub fn remaining_ms(&self) -> Option<u64> {
        self.remaining().map(|d| {
            let ms = d.as_millis() as u64;
            if ms == 0 {
                1
            } else {
                ms
            }
        })
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_budget_has_time_and_then_expires() {
        let b = DeadlineBudget::from_millis(40);
        assert!(!b.expired());
        assert!(b.remaining_ms().unwrap() <= 40);
        std::thread::sleep(Duration::from_millis(60));
        assert!(b.expired());
        assert!(b.remaining().is_none());
        assert!(b.remaining_ms().is_none());
    }

    #[test]
    fn clones_share_the_absolute_deadline() {
        let a = DeadlineBudget::from_millis(50);
        let b = a;
        std::thread::sleep(Duration::from_millis(10));
        let ra = a.remaining().unwrap();
        let rb = b.remaining().unwrap();
        let diff = ra.abs_diff(rb);
        assert!(diff < Duration::from_millis(5));
    }

    #[test]
    fn live_budget_never_reports_zero_ms() {
        let b = DeadlineBudget::new(Duration::from_micros(500));
        if let Some(ms) = b.remaining_ms() {
            assert!(ms >= 1);
        }
    }
}
