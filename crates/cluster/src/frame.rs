//! Length-prefixed, checksummed binary frames and the payload codecs
//! used by the cluster wire protocol.
//!
//! A frame is `[u64 LE payload length][payload][u64 LE FNV-1a of payload]`.
//! The text request/response line announces the total frame size as
//! `bytes=<n>`, the peer `read_exact`s that many bytes and [`decode`]
//! re-validates both the inner length and the checksum, so a truncated
//! or corrupted body is detected before any of it is interpreted.
//!
//! Two payload shapes ride inside frames:
//!
//! * **points** — `[u32 dims][u32 0][u64 rows][rows*dims f64 LE]`, the
//!   raw rows of one shard (`SHARDPUT`).
//! * **fold request** — `[u32 dims][u32 0][u64 m][m u64 global ids]
//!   [m*dims f64 LE canonical skyline columns]`, everything a worker
//!   needs to fold its shard against the coordinator's skyline (`FOLD`).
//!
//! `FOLD`/`FETCH` responses carry `SKYSIG02` artefacts (see
//! `core::minhash::persist`), which bring their own checksum; the frame
//! layer wraps them anyway so every body on the wire is validated the
//! same way.

use std::io;

/// Hard upper bound on a frame body accepted off the wire (1 GiB).
/// Servers apply their configured `max_frame_bytes` first; this cap is a
/// final allocation guard against a corrupt length prefix.
pub const MAX_FRAME_BYTES: usize = 1 << 30;

const HEADER: usize = 8;
const FOOTER: usize = 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        // lint: allow(R2) -- FNV over one frame already capped by
        // max-frame-bytes; pure hashing, no cancellation point needed
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Wrap `payload` in a length+checksum frame ready for the wire.
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + HEADER + FOOTER);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out
}

/// Validate a frame and return its payload slice.
///
/// Errors if the buffer is shorter than a frame header, the inner length
/// disagrees with the buffer, or the checksum does not match.
pub fn decode(frame: &[u8]) -> io::Result<&[u8]> {
    if frame.len() < HEADER + FOOTER {
        return Err(err(format!("frame too short: {} bytes", frame.len())));
    }
    let len = u64::from_le_bytes(frame[..HEADER].try_into().unwrap()) as usize;
    if len > MAX_FRAME_BYTES || frame.len() != HEADER + len + FOOTER {
        return Err(err(format!(
            "frame length mismatch: header says {len}, body has {}",
            frame.len() - HEADER - FOOTER
        )));
    }
    let payload = &frame[HEADER..HEADER + len];
    let want = u64::from_le_bytes(frame[HEADER + len..].try_into().unwrap());
    if fnv1a(payload) != want {
        return Err(err("frame checksum mismatch"));
    }
    Ok(payload)
}

fn push_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        // lint: allow(R2) -- O(len) append into a pre-sized
        // buffer; pure encode, no I/O or waiting
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn read_u32(buf: &[u8], at: usize) -> io::Result<u32> {
    buf.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
        .ok_or_else(|| err("payload truncated"))
}

fn read_u64(buf: &[u8], at: usize) -> io::Result<u64> {
    buf.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .ok_or_else(|| err("payload truncated"))
}

/// Encode `rows × dims` points (row-major flat) as a points payload.
pub fn encode_points(dims: usize, flat: &[f64]) -> Vec<u8> {
    debug_assert!(dims > 0 && flat.len().is_multiple_of(dims));
    let rows = flat.len() / dims;
    let mut out = Vec::with_capacity(16 + flat.len() * 8);
    out.extend_from_slice(&(dims as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(rows as u64).to_le_bytes());
    push_f64s(&mut out, flat);
    out
}

/// Decode a points payload into `(dims, row-major flat coords)`.
pub fn decode_points(payload: &[u8]) -> io::Result<(usize, Vec<f64>)> {
    let dims = read_u32(payload, 0)? as usize;
    let rows = read_u64(payload, 8)? as usize;
    if dims == 0 {
        return Err(err("points payload: zero dims"));
    }
    let want = rows
        .checked_mul(dims)
        .and_then(|c| c.checked_mul(8))
        .and_then(|c| c.checked_add(16))
        .ok_or_else(|| err("points payload: size overflow"))?;
    if payload.len() != want {
        return Err(err(format!(
            "points payload: expected {want} bytes, got {}",
            payload.len()
        )));
    }
    let mut flat = Vec::with_capacity(rows * dims);
    for i in 0..rows * dims {
        // lint: allow(R2) -- bounded by the already length-checked
        // payload; pure decode, caller holds the fan-out deadline
        flat.push(f64::from_bits(read_u64(payload, 16 + i * 8)?));
    }
    Ok((dims, flat))
}

/// Encode a fold request: the global skyline ids and their canonical
/// coordinate columns (`cols[j]` is the `dims`-long column of skyline
/// member `j`, i.e. `m × dims` values row-major by skyline member).
pub fn encode_fold_request(dims: usize, ids: &[usize], cols: &[f64]) -> Vec<u8> {
    debug_assert_eq!(ids.len() * dims, cols.len());
    let mut out = Vec::with_capacity(16 + ids.len() * 8 + cols.len() * 8);
    out.extend_from_slice(&(dims as u32).to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    for &id in ids {
        // lint: allow(R2) -- O(m) id serialisation into a
        // pre-sized buffer; pure encode, no I/O or waiting
        out.extend_from_slice(&(id as u64).to_le_bytes());
    }
    push_f64s(&mut out, cols);
    out
}

/// Decode a fold request into `(dims, skyline ids, flat columns)`.
pub fn decode_fold_request(payload: &[u8]) -> io::Result<(usize, Vec<usize>, Vec<f64>)> {
    let dims = read_u32(payload, 0)? as usize;
    let m = read_u64(payload, 8)? as usize;
    if dims == 0 {
        return Err(err("fold request: zero dims"));
    }
    let want = m
        .checked_mul(8 + dims * 8)
        .and_then(|c| c.checked_add(16))
        .ok_or_else(|| err("fold request: size overflow"))?;
    if payload.len() != want {
        return Err(err(format!(
            "fold request: expected {want} bytes, got {}",
            payload.len()
        )));
    }
    let mut ids = Vec::with_capacity(m);
    for j in 0..m {
        // lint: allow(R2) -- bounded by the already length-checked
        // payload; pure decode, caller holds the fan-out deadline
        ids.push(read_u64(payload, 16 + j * 8)? as usize);
    }
    let base = 16 + m * 8;
    let mut cols = Vec::with_capacity(m * dims);
    for i in 0..m * dims {
        // lint: allow(R2) -- bounded by the already length-checked
        // payload; pure decode, caller holds the fan-out deadline
        cols.push(f64::from_bits(read_u64(payload, base + i * 8)?));
    }
    Ok((dims, ids, cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip_and_corruption_detection() {
        let payload = b"hello skyline".to_vec();
        let mut frame = encode(&payload);
        assert_eq!(decode(&frame).unwrap(), &payload[..]);
        frame[HEADER + 3] ^= 0x40;
        assert!(decode(&frame).is_err(), "bit flip must fail checksum");
        let short = &encode(&payload)[..HEADER + 4];
        assert!(decode(short).is_err(), "truncation must fail");
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn points_round_trip_preserves_bits() {
        let flat = vec![0.0, -0.0, 1.5, f64::MIN_POSITIVE, -3.25, 9e300];
        let enc = encode_points(3, &flat);
        let (dims, back) = decode_points(&enc).unwrap();
        assert_eq!(dims, 3);
        assert_eq!(back.len(), flat.len());
        for (a, b) in back.iter().zip(&flat) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(decode_points(&enc[..enc.len() - 1]).is_err());
    }

    #[test]
    fn fold_request_round_trip() {
        let ids = vec![3usize, 17, 4096];
        let cols = vec![0.5; 6];
        let enc = encode_fold_request(2, &ids, &cols);
        let (dims, back_ids, back_cols) = decode_fold_request(&enc).unwrap();
        assert_eq!(dims, 2);
        assert_eq!(back_ids, ids);
        assert_eq!(back_cols, cols);
        let mut bad = enc.clone();
        bad.truncate(bad.len() - 8);
        assert!(decode_fold_request(&bad).is_err());
    }

    #[test]
    fn hostile_lengths_do_not_overallocate() {
        // A points header claiming u64::MAX rows must be rejected before
        // any allocation is sized from it.
        let mut p = Vec::new();
        p.extend_from_slice(&8u32.to_le_bytes());
        p.extend_from_slice(&0u32.to_le_bytes());
        p.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(decode_points(&p).is_err());
        assert!(decode_fold_request(&p).is_err());
    }
}
