//! Epoch-numbered cluster membership with deterministic handoff plans.
//!
//! The coordinator owns a single [`Membership`] value. Every roster
//! change bumps the epoch and yields a [`Handoff`] plan — the exact list
//! of `(shard, new owner, donor)` moves implied by the rendezvous map
//! before vs after. Because ownership is a pure function of the roster,
//! the plan is reproducible from the two rosters alone; there is no
//! hidden state to reconcile.

use crate::rendezvous::ownership_map;

/// One shard movement implied by a roster change: `to` must acquire
/// `shard`, preferably by pulling the fold from `from` (a surviving
/// previous owner) rather than recomputing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handoff {
    /// Shard index that changes hands.
    pub shard: usize,
    /// Node that becomes an owner of the shard at the new epoch.
    pub to: String,
    /// A previous owner that survives into the new epoch and can donate
    /// the shard's artefacts, if any survived the change.
    pub from: Option<String>,
}

/// The cluster roster at a given epoch.
#[derive(Debug, Clone)]
pub struct Membership {
    nodes: Vec<String>,
    epoch: u64,
}

impl Membership {
    /// A fresh roster at epoch 1. Node order is canonicalised (sorted,
    /// deduplicated) so two coordinators booted with the same worker
    /// list agree byte-for-byte.
    pub fn new(nodes: Vec<String>) -> Self {
        let mut nodes = nodes;
        nodes.sort();
        nodes.dedup();
        Membership { nodes, epoch: 1 }
    }

    /// Current epoch; bumped by every successful [`join`](Self::join) or
    /// [`leave`](Self::leave).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The canonical node roster (sorted, unique).
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Whether `node` is in the roster.
    pub fn contains(&self, node: &str) -> bool {
        self.nodes.iter().any(|n| n == node)
    }

    /// Add `node`, returning the handoff plan for `shards` shards at
    /// replication `r`, or `None` if the node was already a member
    /// (no epoch bump, no moves).
    pub fn join(&mut self, node: &str, shards: usize, r: usize) -> Option<Vec<Handoff>> {
        if self.contains(node) {
            return None;
        }
        let before = self.nodes.clone();
        self.nodes.push(node.to_string());
        self.nodes.sort();
        self.epoch += 1;
        Some(handoff_plan(&before, &self.nodes, shards, r))
    }

    /// Remove `node`, returning the handoff plan, or `None` if it was
    /// not a member.
    pub fn leave(&mut self, node: &str, shards: usize, r: usize) -> Option<Vec<Handoff>> {
        if !self.contains(node) {
            return None;
        }
        let before = self.nodes.clone();
        self.nodes.retain(|n| n != node);
        self.epoch += 1;
        Some(handoff_plan(&before, &self.nodes, shards, r))
    }
}

/// The moves implied by changing the roster from `before` to `after`:
/// one [`Handoff`] per `(shard, node)` pair that owns the shard after
/// but not before. The donor is the first pre-change owner that survives
/// into the new roster, if any.
pub fn handoff_plan(before: &[String], after: &[String], shards: usize, r: usize) -> Vec<Handoff> {
    let old = ownership_map(before, shards, r);
    let new = ownership_map(after, shards, r);
    let mut plan = Vec::new();
    for (shard, owners) in new.iter().enumerate() {
        // lint: allow(R2) -- O(shards x R) diff of two placement maps,
        // both small and in memory; planning only, no I/O
        for node in owners {
            if old[shard].contains(node) {
                continue;
            }
            let from = old[shard].iter().find(|o| after.contains(o)).cloned();
            plan.push(Handoff {
                shard,
                to: node.clone(),
                from,
            });
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roster(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn join_leave_round_trip_restores_roster_and_bumps_epoch() {
        let mut m = Membership::new(roster(&["b", "a", "a"]));
        assert_eq!(m.nodes(), &roster(&["a", "b"])[..]);
        assert_eq!(m.epoch(), 1);
        assert!(m.join("c", 16, 1).is_some());
        assert_eq!(m.epoch(), 2);
        assert!(m.join("c", 16, 1).is_none(), "re-join is a no-op");
        assert_eq!(m.epoch(), 2);
        assert!(m.leave("c", 16, 1).is_some());
        assert_eq!(m.nodes(), &roster(&["a", "b"])[..]);
        assert_eq!(m.epoch(), 3);
        assert!(m.leave("zz", 16, 1).is_none());
    }

    #[test]
    fn plan_is_pure_function_of_rosters() {
        let before = roster(&["w1", "w2", "w3"]);
        let after = roster(&["w1", "w2", "w3", "w4"]);
        let a = handoff_plan(&before, &after, 64, 2);
        let b = handoff_plan(&before, &after, 64, 2);
        assert_eq!(a, b);
        // Every move targets the joining node and names a surviving donor.
        for h in &a {
            assert_eq!(h.to, "w4");
            assert!(h.from.is_some());
        }
        assert!(!a.is_empty());
    }

    #[test]
    fn leave_reassigns_every_lost_shard() {
        let before = roster(&["w1", "w2", "w3"]);
        let after = roster(&["w1", "w2"]);
        let shards = 32;
        let plan = handoff_plan(&before, &after, shards, 1);
        let lost: Vec<usize> = (0..shards)
            .filter(|&s| crate::rendezvous::owners(&before, s, 1) == roster(&["w3"]))
            .collect();
        let planned: Vec<usize> = plan.iter().map(|h| h.shard).collect();
        for s in lost {
            assert!(planned.contains(&s), "shard {s} orphaned");
        }
        // Donor of a shard lost with r=1 cannot survive (the only owner left).
        for h in plan.iter().filter(|h| planned.contains(&h.shard)) {
            if crate::rendezvous::owners(&before, h.shard, 1) == roster(&["w3"]) {
                assert!(h.from.is_none());
            }
        }
    }

    #[test]
    fn leave_with_replication_keeps_a_donor() {
        let before = roster(&["w1", "w2", "w3"]);
        let after = roster(&["w1", "w2"]);
        for h in handoff_plan(&before, &after, 32, 2) {
            // With r=2 one replica survives any single leave.
            assert!(h.from.is_some(), "shard {} lost both replicas", h.shard);
        }
    }
}
