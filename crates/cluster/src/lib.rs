//! Cluster substrate for distributed SkyDiver serving.
//!
//! This crate holds the *pure* building blocks of the scatter-gather
//! serving tier — everything that can be reasoned about (and unit-tested)
//! without sockets:
//!
//! * [`rendezvous`] — highest-random-weight (HRW) shard→node ownership.
//!   Ownership is a pure function of `(node set, shard id, replication)`,
//!   so every participant computes the same map with no consensus round.
//! * [`membership`] — an epoch-numbered node roster with deterministic
//!   join/leave handoff plans (which shards move where when the roster
//!   changes).
//! * [`frame`] — length-prefixed, FNV-checksummed binary frames plus the
//!   payload codecs used on the wire (shard rows, fold requests).
//! * [`deadline`] — a single [`deadline::DeadlineBudget`] shared by every
//!   coordinator→worker leg of one fan-out, so a slow worker cannot
//!   consume the whole request deadline.
//!
//! The crate is `std`-only and has no dependency on the rest of the
//! workspace: the serve layer composes these primitives with the core
//! fold/merge pipeline.

pub mod deadline;
pub mod frame;
pub mod membership;
pub mod rendezvous;

pub use deadline::DeadlineBudget;
pub use membership::{Handoff, Membership};
pub use rendezvous::owners;
