//! Sort-Filter-Skyline (Chomicki et al.).
//!
//! Presorting by a score that is *monotone with dominance* (if `p ≺ q`
//! then `score(p) < score(q)`) guarantees that no point can be dominated
//! by a later one, so the window only grows and each point is compared
//! against confirmed skyline members only.

use skydiver_data::{DatasetView, DominanceOrd};

/// SFS with the canonical coordinate-sum score (monotone for
/// min-dominance). Accepts a dataset or any [`DatasetView`]; returns
/// view-local skyline indices in ascending order.
pub fn sfs<'a, O>(ds: impl Into<DatasetView<'a>>, ord: &O) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    sfs_with_score(ds, ord, |p| p.iter().sum())
}

/// SFS with a caller-supplied monotone score.
///
/// The correctness contract is the caller's: `ord.dominates(p, q)` must
/// imply `score(p) <= score(q)` (strict scores give the best filtering;
/// ties are handled correctly either way because equal-score points are
/// still compared).
pub fn sfs_with_score<'a, O, F>(ds: impl Into<DatasetView<'a>>, ord: &O, score: F) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
    F: Fn(&[f64]) -> f64,
{
    let view: DatasetView<'a> = ds.into();
    let mut order: Vec<usize> = (0..view.len()).collect();
    order.sort_by(|&a, &b| {
        score(view.point(a))
            .partial_cmp(&score(view.point(b)))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut skyline: Vec<usize> = Vec::new();
    'points: for &i in &order {
        let p = view.point(i);
        for &s in &skyline {
            if ord.dominates(view.point(s), p) {
                continue 'points;
            }
        }
        skyline.push(i);
    }
    skyline.sort_unstable();
    skyline
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::Dataset;
    use skydiver_data::generators::{anticorrelated, independent};

    #[test]
    fn matches_naive() {
        for seed in 0..3 {
            let ds = independent(600, 3, seed + 40);
            assert_eq!(sfs(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
        }
    }

    #[test]
    fn matches_naive_anticorrelated_high_dim() {
        let ds = anticorrelated(300, 5, 44);
        assert_eq!(sfs(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
    }

    #[test]
    fn custom_score_still_correct() {
        let ds = independent(400, 2, 45);
        // Weighted sum is also monotone.
        let got = sfs_with_score(&ds, &MinDominance, |p| 2.0 * p[0] + p[1]);
        assert_eq!(got, naive_skyline(&ds, &MinDominance));
    }

    #[test]
    fn equal_score_ties_handled() {
        // Points on an anti-diagonal share the same sum.
        let ds = Dataset::from_rows(2, &[[0.5, 0.5], [0.3, 0.7], [0.7, 0.3], [0.5, 0.5]]);
        assert_eq!(sfs(&ds, &MinDominance), vec![0, 1, 2, 3]);
    }
}
