//! Block-Nested-Loops skyline (Börzsönyi, Kossmann, Stocker, ICDE'01).
//!
//! Maintains a window of non-dominated candidates and streams the data
//! through it once. In-memory variant: the window always fits, so the
//! result is exact after a single pass (`O(n·m)` comparisons).

use std::borrow::Borrow;

use skydiver_data::dominance::Dominance;
use skydiver_data::{Dataset, DominanceOrd};

/// BNL over a [`Dataset`]. Returns skyline point indices in ascending
/// order.
pub fn bnl<O>(ds: &Dataset, ord: &O) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    let mut window: Vec<usize> = Vec::new();
    'points: for (i, p) in ds.iter().enumerate() {
        let mut w = 0;
        while w < window.len() {
            match ord.dom_cmp(ds.point(window[w]), p) {
                Dominance::Dominates => continue 'points,
                Dominance::DominatedBy => {
                    window.swap_remove(w);
                }
                Dominance::Equal | Dominance::Incomparable => w += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

/// BNL over arbitrary items under any [`DominanceOrd`] — the entry point
/// for categorical and partially-ordered domains where no [`Dataset`]
/// exists. Returns item indices in ascending order.
pub fn bnl_generic<I, O>(items: &[I], ord: &O) -> Vec<usize>
where
    O: DominanceOrd,
    I: Borrow<O::Item>,
{
    let mut window: Vec<usize> = Vec::new();
    'items: for (i, p) in items.iter().enumerate() {
        let mut w = 0;
        while w < window.len() {
            match ord.dom_cmp(items[window[w]].borrow(), p.borrow()) {
                Dominance::Dominates => continue 'items,
                Dominance::DominatedBy => {
                    window.swap_remove(w);
                }
                Dominance::Equal | Dominance::Incomparable => w += 1,
            }
        }
        window.push(i);
    }
    window.sort_unstable();
    window
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::categorical::{CategoricalDominance, PartialOrderAttr};
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, correlated, independent};

    #[test]
    fn matches_naive_on_random_data() {
        for seed in 0..3 {
            let ds = independent(500, 3, seed);
            assert_eq!(bnl(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
        }
    }

    #[test]
    fn matches_naive_on_anticorrelated() {
        let ds = anticorrelated(400, 3, 5);
        assert_eq!(bnl(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
    }

    #[test]
    fn matches_naive_on_correlated() {
        let ds = correlated(400, 4, 6);
        assert_eq!(bnl(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
    }

    #[test]
    fn duplicates_both_survive() {
        let ds = Dataset::from_rows(2, &[[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]);
        assert_eq!(bnl(&ds, &MinDominance), vec![0, 1]);
    }

    #[test]
    fn generic_bnl_on_categorical_records() {
        // One diamond attribute (0 best, 3 worst) + one total order.
        let mut diamond = PartialOrderAttr::new(4);
        diamond.add_preference(0, 1);
        diamond.add_preference(0, 2);
        diamond.add_preference(1, 3);
        diamond.add_preference(2, 3);
        let ord = CategoricalDominance::new(vec![
            diamond.close().unwrap(),
            PartialOrderAttr::total_order(3),
        ]);
        let items: Vec<Vec<u32>> = vec![
            vec![0, 1], // dominates [1,1], [3,2]
            vec![1, 1],
            vec![2, 0], // incomparable with [0,1] on attr1? 0 better than 1 → [2,0] vs [0,1]: attr0 worse, attr1 better → incomparable
            vec![3, 2], // dominated by [0,1]
        ];
        assert_eq!(bnl_generic(&items, &ord), vec![0, 2]);
    }
}
