//! Top-k dominating queries (Yiu & Mamoulis, VLDB'07 — the paper's
//! reference \[36\] for dominance-based ranking).
//!
//! The domination score `|Γ(p)|` is "an established approach for
//! dominance-based ranking" and the quantity SkyDiver uses to seed and
//! tie-break its selection. This module answers the standalone query:
//! the `k` points of highest domination score. Unlike the skyline, the
//! answer may contain dominated points.

use skydiver_data::{Dataset, DominanceOrd};
use skydiver_rtree::{BufferPool, RTree};

/// Top-k dominating points by exhaustive scoring (`O(n²·d)`); ground
/// truth for tests and fine for small data.
///
/// Returns `(index, score)` pairs, best first; ties broken by index.
pub fn top_k_dominating_scan<O>(ds: &Dataset, ord: &O, k: usize) -> Vec<(usize, u64)>
where
    O: DominanceOrd<Item = [f64]>,
{
    let mut scored: Vec<(usize, u64)> = (0..ds.len())
        .map(|i| {
            let p = ds.point(i);
            let score = ds.iter().filter(|q| ord.dominates(p, q)).count() as u64;
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

/// Top-k dominating via aggregate R-tree counts: one dominance-region
/// count query per point, charged to `pool`. Same output as the scan;
/// far fewer comparisons when the tree prunes well.
pub fn top_k_dominating_tree(
    ds: &Dataset,
    tree: &RTree,
    pool: &mut BufferPool,
    k: usize,
) -> Vec<(usize, u64)> {
    let mut scored: Vec<(usize, u64)> = (0..ds.len())
        .map(|i| (i, tree.count_dominated(pool, ds.point(i))))
        .collect();
    scored.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::independent;

    #[test]
    fn scan_hand_checked() {
        let ds = Dataset::from_rows(
            2,
            &[
                [0.1, 0.1], // dominates everyone below
                [0.5, 0.5],
                [0.6, 0.6],
                [0.9, 0.2], // dominates nobody (0.2 < others' y? 0.9 too big)
            ],
        );
        let top = top_k_dominating_scan(&ds, &MinDominance, 2);
        assert_eq!(top, vec![(0, 3), (1, 1)]);
    }

    #[test]
    fn tree_matches_scan() {
        let ds = independent(1500, 3, 80);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let a = top_k_dominating_scan(&ds, &MinDominance, 10);
        let b = top_k_dominating_tree(&ds, &tree, &mut pool, 10);
        assert_eq!(a, b);
    }

    #[test]
    fn top_point_need_not_be_skyline_unique() {
        // The top dominating point is always a skyline point in
        // min-space? No: a point dominated by another can still have a
        // high score, but the maximum-score point is never dominated by
        // one with a *lower* score... Verify the basic sanity instead:
        // the best scorer's score equals its Γ cardinality.
        let ds = independent(400, 2, 81);
        let top = top_k_dominating_scan(&ds, &MinDominance, 1);
        let (i, s) = top[0];
        assert_eq!(
            s as usize,
            ds.dominated_by_scan(&MinDominance, ds.point(i)).len()
        );
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let ds = independent(7, 2, 82);
        assert_eq!(top_k_dominating_scan(&ds, &MinDominance, 100).len(), 7);
    }

    use skydiver_data::Dataset;
}
