//! The `O(n²)` skyline oracle.

use skydiver_data::{DatasetView, DominanceOrd};

/// Computes the skyline by comparing every pair of points.
///
/// Quadratic; exists as the ground truth for property tests and for tiny
/// inputs. Accepts a dataset or any [`DatasetView`]; returns view-local
/// point indices in ascending order.
pub fn naive_skyline<'a, O>(ds: impl Into<DatasetView<'a>>, ord: &O) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    let view: DatasetView<'a> = ds.into();
    (0..view.len())
        .filter(|&i| {
            let p = view.point(i);
            !view.iter().any(|q| ord.dominates(q, p))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::Dataset;

    #[test]
    fn hand_checked_skyline() {
        // Classic hotel example: (price, distance).
        let ds = Dataset::from_rows(
            2,
            &[
                [50.0, 8.0],  // 0: skyline
                [60.0, 9.0],  // 1: dominated by 0
                [40.0, 12.0], // 2: skyline
                [50.0, 8.0],  // 3: duplicate of 0 → also skyline
                [45.0, 10.0], // 4: skyline (beats 2 on distance? 45>40, 10<12 → incomparable)
            ],
        );
        assert_eq!(naive_skyline(&ds, &MinDominance), vec![0, 2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Dataset::new(2);
        assert!(naive_skyline(&empty, &MinDominance).is_empty());
        let one = Dataset::from_rows(2, &[[1.0, 1.0]]);
        assert_eq!(naive_skyline(&one, &MinDominance), vec![0]);
    }

    #[test]
    fn all_points_on_antichain() {
        let ds = Dataset::from_rows(2, &[[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]]);
        assert_eq!(naive_skyline(&ds, &MinDominance), vec![0, 1, 2, 3]);
    }
}
