//! External-memory skyline computation in the I/O model.
//!
//! The paper's reference \[29\] (Sheng & Tao, PODS'11) studies skylines
//! "designed for the I/O model \[that\] always provide correct
//! results". This module implements the practical workhorse of that
//! family — **LESS** (Linear Elimination Sort with Skyline filter,
//! Godfrey et al.): an external merge sort by a dominance-monotone
//! score with early elimination, followed by an SFS filter over the
//! sorted stream. All data movement is charged to the same simulated
//! cost model as the rest of the framework (sequential 4 KiB pages,
//! 8 ms each), so its I/O behaviour is directly comparable to BNL
//! re-scans and BBS index traversals.

use skydiver_data::dominance::dominates_min;
use skydiver_data::Dataset;
use skydiver_rtree::buffer::pages_for_records;
use skydiver_rtree::IoStats;

/// Configuration of the external algorithm.
#[derive(Debug, Clone, Copy)]
pub struct ExternalConfig {
    /// Available buffer memory, in pages.
    pub memory_pages: usize,
    /// Page size in bytes (4096 matches the paper's setup).
    pub page_size: usize,
}

impl Default for ExternalConfig {
    fn default() -> Self {
        ExternalConfig {
            memory_pages: 64,
            page_size: skydiver_rtree::DEFAULT_PAGE_SIZE,
        }
    }
}

/// Counters of one external run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExternalStats {
    /// Simulated I/O (sequential page reads + writes).
    pub io: IoStats,
    /// Sorted runs produced by phase 1.
    pub runs: usize,
    /// Records dropped by the elimination window before sorting.
    pub eliminated_early: usize,
}

/// LESS skyline over a (canonical min-space) dataset. Returns skyline
/// indices in ascending order plus the I/O statistics.
///
/// # Panics
/// Panics if `memory_pages < 3` (external sort needs input + output +
/// working space).
pub fn less_skyline(ds: &Dataset, cfg: ExternalConfig) -> (Vec<usize>, ExternalStats) {
    assert!(cfg.memory_pages >= 3, "need at least 3 pages of memory");
    let d = ds.dims();
    let record_bytes = 8 * d + 8;
    let per_page = (cfg.page_size / record_bytes).max(1);
    let chunk_records = cfg.memory_pages * per_page;

    let mut stats = ExternalStats::default();
    if ds.is_empty() {
        return (Vec::new(), stats);
    }

    let score = |i: usize| -> f64 { ds.point(i).iter().sum() };

    // ---- Phase 1: run formation with elimination ------------------------
    // The elite window holds up to one page of the best-scored
    // non-dominated records seen so far; anything it dominates is
    // dropped before ever being sorted or written.
    let mut elite: Vec<usize> = Vec::with_capacity(per_page);
    let mut runs: Vec<Vec<usize>> = Vec::new();
    let n = ds.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk_records).min(n);
        // Read the chunk.
        stats.io.sequential_pages += pages_for_records(end - start, record_bytes, cfg.page_size);
        let mut chunk: Vec<usize> = (start..end)
            .filter(|&i| {
                let dead = elite.iter().any(|&e| dominates_min(ds.point(e), ds.point(i)));
                if dead {
                    stats.eliminated_early += 1;
                }
                !dead
            })
            .collect();
        // Refresh the elite window with the chunk's best-scored
        // non-dominated records.
        for &i in chunk.iter() {
            consider_elite(ds, &mut elite, i, per_page, &score);
        }
        // Sort the surviving chunk by the monotone score and write it
        // out as a run.
        chunk.sort_by(|&a, &b| score(a).partial_cmp(&score(b)).unwrap_or(std::cmp::Ordering::Equal));
        if !chunk.is_empty() {
            stats.io.sequential_pages +=
                pages_for_records(chunk.len(), record_bytes, cfg.page_size);
            runs.push(chunk);
        }
        start = end;
    }
    stats.runs = runs.len();

    // ---- Phase 2: merge + SFS filter ------------------------------------
    // K-way merge of the runs by score; each run is read back once.
    for run in &runs {
        stats.io.sequential_pages += pages_for_records(run.len(), record_bytes, cfg.page_size);
    }
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(ordered, usize, usize)>> =
        std::collections::BinaryHeap::new();
    for (r, run) in runs.iter().enumerate() {
        if !run.is_empty() {
            heap.push(std::cmp::Reverse((ordered::from(score(run[0])), r, 0)));
        }
    }
    let mut window: Vec<usize> = Vec::new();
    while let Some(std::cmp::Reverse((_, r, pos))) = heap.pop() {
        let i = runs[r][pos];
        if pos + 1 < runs[r].len() {
            heap.push(std::cmp::Reverse((
                ordered::from(score(runs[r][pos + 1])),
                r,
                pos + 1,
            )));
        }
        // Score-monotone order: nothing later can dominate `window`
        // members, so a single window check suffices (SFS invariant).
        if !window.iter().any(|&w| dominates_min(ds.point(w), ds.point(i))) {
            window.push(i);
        }
    }
    window.sort_unstable();
    (window, stats)
}

/// Keeps the elite window at the best-scored non-dominated records.
fn consider_elite(
    ds: &Dataset,
    elite: &mut Vec<usize>,
    i: usize,
    cap: usize,
    score: &impl Fn(usize) -> f64,
) {
    // Dominated candidates never enter; candidates evict what they
    // dominate.
    if elite.iter().any(|&e| dominates_min(ds.point(e), ds.point(i))) {
        return;
    }
    elite.retain(|&e| !dominates_min(ds.point(i), ds.point(e)));
    elite.push(i);
    if elite.len() > cap {
        // Keep the lowest-scored (most dominating-prone) records.
        elite.sort_by(|&a, &b| {
            score(a)
                .partial_cmp(&score(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        elite.truncate(cap);
    }
}

/// Total order wrapper for f64 heap keys (NaN-free by construction).
#[derive(PartialEq, PartialOrd)]
#[allow(non_camel_case_types)]
struct ordered(f64);

impl ordered {
    fn from(v: f64) -> Self {
        ordered(v)
    }
}
impl Eq for ordered {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for ordered {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, correlated, independent};

    fn cfg(pages: usize) -> ExternalConfig {
        ExternalConfig {
            memory_pages: pages,
            page_size: 4096,
        }
    }

    #[test]
    fn exact_across_distributions() {
        for ds in [
            independent(3000, 3, 200),
            anticorrelated(2500, 3, 201),
            correlated(2500, 3, 202),
        ] {
            let (got, stats) = less_skyline(&ds, cfg(8));
            assert_eq!(got, naive_skyline(&ds, &MinDominance));
            assert!(stats.runs >= 1);
            assert!(stats.io.sequential_pages > 0);
        }
    }

    #[test]
    fn exact_with_tiny_memory() {
        let ds = independent(2000, 2, 203);
        let (got, stats) = less_skyline(&ds, cfg(3));
        assert_eq!(got, naive_skyline(&ds, &MinDominance));
        assert!(stats.runs > 1, "tiny memory must force multiple runs");
    }

    #[test]
    fn elimination_reduces_written_volume_on_correlated_data() {
        // Correlated data has a tiny skyline; the elite window should
        // kill most records before they are sorted/written.
        let ds = correlated(20_000, 3, 204);
        let (_, stats) = less_skyline(&ds, cfg(8));
        assert!(
            stats.eliminated_early > ds.len() / 2,
            "only {} of {} eliminated early",
            stats.eliminated_early,
            ds.len()
        );
    }

    #[test]
    fn more_memory_means_fewer_runs() {
        let ds = independent(10_000, 3, 205);
        let (_, small) = less_skyline(&ds, cfg(4));
        let (_, large) = less_skyline(&ds, cfg(64));
        assert!(large.runs <= small.runs);
    }

    #[test]
    fn empty_and_single() {
        let (got, _) = less_skyline(&Dataset::new(2), cfg(4));
        assert!(got.is_empty());
        let one = Dataset::from_rows(2, &[[0.5, 0.5]]);
        let (got, _) = less_skyline(&one, cfg(4));
        assert_eq!(got, vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least 3 pages")]
    fn rejects_too_little_memory() {
        let ds = independent(10, 2, 206);
        let _ = less_skyline(&ds, cfg(2));
    }

    use skydiver_data::Dataset;
}
