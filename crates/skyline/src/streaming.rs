//! Randomized multi-pass streaming skyline (Das Sarma, Lall, Nanongkai,
//! Xu — *Randomized multi-pass streaming skyline algorithms*, PVLDB'09;
//! the paper's reference \[11\] for index-free skyline computation).
//!
//! The algorithm keeps only `s` candidate points in memory and makes
//! repeated passes over the (simulated) stream:
//!
//! 1. **Sample** `s` alive points uniformly (reservoir sampling).
//! 2. **Promote**: scan the stream; whenever a point dominates a
//!    candidate's current value, it replaces it — candidates drift
//!    toward the skyline.
//! 3. **Eliminate**: scan again; every alive point dominated by a
//!    candidate dies. A candidate that ended the promote pass
//!    unreplaced was dominated by nobody, so it is emitted as a skyline
//!    point.
//!
//! Each round retires at least the sampled points, so the algorithm
//! terminates with the **exact** skyline; randomness only affects the
//! number of passes (O(log n) w.h.p. for random orders).

use rand::{rngs::StdRng, Rng, SeedableRng};

use skydiver_data::{Dataset, DominanceOrd};

/// Resource usage of a streaming run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamingStats {
    /// Number of full passes over the stream.
    pub passes: u64,
    /// Number of sample/eliminate rounds.
    pub rounds: u64,
    /// Maximum number of candidate points held in memory.
    pub peak_candidates: usize,
}

/// Computes the exact skyline with `O(sample_size)` working memory and
/// multiple passes. Returns skyline indices (ascending) plus pass/memory
/// statistics.
///
/// ```
/// use skydiver_data::{generators, dominance::MinDominance};
/// use skydiver_skyline::{naive_skyline, streaming_skyline};
/// let ds = generators::independent(500, 2, 1);
/// let (sky, stats) = streaming_skyline(&ds, &MinDominance, 8, 0);
/// assert_eq!(sky, naive_skyline(&ds, &MinDominance));
/// assert!(stats.peak_candidates <= 8);
/// ```
///
/// # Panics
/// Panics if `sample_size == 0`.
pub fn streaming_skyline<O>(
    ds: &Dataset,
    ord: &O,
    sample_size: usize,
    seed: u64,
) -> (Vec<usize>, StreamingStats)
where
    O: DominanceOrd<Item = [f64]>,
{
    assert!(sample_size > 0, "need at least one candidate slot");
    let n = ds.len();
    let mut alive = vec![true; n];
    let mut alive_count = n;
    let mut skyline: Vec<usize> = Vec::new();
    let mut stats = StreamingStats::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57EA_A11E);

    while alive_count > 0 {
        stats.rounds += 1;

        // Pass 1: reservoir-sample candidates among alive points.
        stats.passes += 1;
        let s = sample_size.min(alive_count);
        let mut candidates: Vec<usize> = Vec::with_capacity(s);
        for (seen, i) in (0..n).filter(|&i| alive[i]).enumerate() {
            if candidates.len() < s {
                candidates.push(i);
            } else {
                let j = rng.gen_range(0..=seen);
                if j < s {
                    candidates[j] = i;
                }
            }
        }
        stats.peak_candidates = stats.peak_candidates.max(candidates.len());
        let originals = candidates.clone();

        // Pass 2: promote candidates toward the skyline.
        stats.passes += 1;
        let mut replaced = vec![false; candidates.len()];
        for i in (0..n).filter(|&i| alive[i]) {
            for (c, r) in candidates.iter_mut().enumerate() {
                if i != *r && ord.dominates(ds.point(i), ds.point(*r)) {
                    *r = i;
                    replaced[c] = true;
                }
            }
        }

        // Pass 3: eliminate dominated points; emit unreplaced
        // candidates (nothing alive dominated them).
        stats.passes += 1;
        for (i, alive_i) in alive.iter_mut().enumerate() {
            if !*alive_i {
                continue;
            }
            if candidates
                .iter()
                .any(|&r| ord.dominates(ds.point(r), ds.point(i)))
            {
                *alive_i = false;
                alive_count -= 1;
            }
        }
        for (c, &r) in candidates.iter().enumerate() {
            if !replaced[c] {
                // Never dominated during the promote pass → skyline.
                if alive[r] {
                    skyline.push(r);
                    alive[r] = false;
                    alive_count -= 1;
                }
            } else if alive[r] {
                // A promoted candidate may itself still be dominated by
                // an earlier stream point; it stays alive. Its original
                // sample, however, is dominated by it and already died
                // in the elimination scan above.
                debug_assert!(!alive[originals[c]] || originals[c] == r);
            }
        }
    }

    skyline.sort_unstable();
    (skyline, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, correlated, independent};

    #[test]
    fn exact_across_distributions_and_sample_sizes() {
        for ds in [
            independent(800, 3, 70),
            anticorrelated(600, 3, 71),
            correlated(600, 3, 72),
        ] {
            let expect = naive_skyline(&ds, &MinDominance);
            for s in [1usize, 4, 16, 64] {
                let (got, _) = streaming_skyline(&ds, &MinDominance, s, 7);
                assert_eq!(got, expect, "sample_size {s}");
            }
        }
    }

    #[test]
    fn memory_stays_bounded() {
        let ds = independent(2000, 2, 73);
        let (_, stats) = streaming_skyline(&ds, &MinDominance, 8, 1);
        assert!(stats.peak_candidates <= 8);
        assert!(stats.passes >= 3);
    }

    #[test]
    fn bigger_samples_need_fewer_rounds() {
        let ds = anticorrelated(3000, 3, 74);
        let (_, small) = streaming_skyline(&ds, &MinDominance, 2, 2);
        let (_, large) = streaming_skyline(&ds, &MinDominance, 256, 2);
        assert!(
            large.rounds <= small.rounds,
            "s=256 rounds {} > s=2 rounds {}",
            large.rounds,
            small.rounds
        );
    }

    #[test]
    fn duplicates_survive_together() {
        let ds = Dataset::from_rows(2, &[[0.2, 0.2], [0.2, 0.2], [0.5, 0.5]]);
        let (got, _) = streaming_skyline(&ds, &MinDominance, 2, 3);
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn empty_dataset() {
        let ds = Dataset::new(2);
        let (got, stats) = streaming_skyline(&ds, &MinDominance, 4, 4);
        assert!(got.is_empty());
        assert_eq!(stats.rounds, 0);
    }

    use skydiver_data::Dataset;
}
