//! Branch-and-Bound Skyline over the aggregate R*-tree (Papadias, Tao,
//! Fu, Seeger, TODS'05).
//!
//! BBS expands index entries in ascending "mindist" order (here: sum of
//! the MBR's best corner, which is monotone with min-dominance) and
//! prunes every entry whose best corner is already dominated by a found
//! skyline point. It is progressive and I/O-optimal — the reason the
//! paper calls it "the most preferred" skyline algorithm. Page accesses
//! are charged to the caller's [`BufferPool`].

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use skydiver_data::dominance::dominates_min;
use skydiver_rtree::{BufferPool, Child, PageId, RTree};

/// A heap item: entry key plus what it references.
struct HeapItem {
    key: f64,
    target: Target,
}

enum Target {
    Node(PageId),
    Point(u32, Vec<f64>),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on key via reversed comparison; NaNs sort last.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
    }
}

/// Computes the skyline (dataset indices, ascending) of the points
/// indexed by `tree`, reading pages through `pool`.
///
/// The tree must index the data in canonical min-space (as produced by
/// `RTree::bulk_load` on a canonicalised dataset).
///
/// Cooperates with fault injection: when `pool` becomes poisoned (an
/// injected page-read failure, see `BufferPool::poisoned`), the
/// traversal stops immediately and returns whatever it has found so
/// far. Callers that need a complete skyline must check
/// `pool.failure()` afterwards — the SkyDiver pipeline does, converting
/// a poisoned pool into a typed `IndexReadFailure` error.
pub fn bbs(tree: &RTree, pool: &mut BufferPool) -> Vec<usize> {
    let mut skyline_coords: Vec<Vec<f64>> = Vec::new();
    let mut skyline_ids: Vec<usize> = Vec::new();
    if tree.is_empty() {
        return skyline_ids;
    }

    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
    heap.push(HeapItem {
        key: f64::NEG_INFINITY,
        target: Target::Node(tree.root()),
    });

    while let Some(item) = heap.pop() {
        if pool.poisoned() {
            break;
        }
        match item.target {
            Target::Node(pid) => {
                let node = tree.read_node(pool, pid);
                for e in &node.entries {
                    if dominated_by_any(&skyline_coords, e.mbr.lo()) {
                        continue;
                    }
                    let key: f64 = e.mbr.lo().iter().sum();
                    let target = match e.child {
                        Child::Node(c) => Target::Node(c),
                        Child::Point(id) => Target::Point(id, e.mbr.lo().to_vec()),
                    };
                    heap.push(HeapItem { key, target });
                }
            }
            Target::Point(id, coords) => {
                if dominated_by_any(&skyline_coords, &coords) {
                    continue;
                }
                skyline_ids.push(id as usize);
                skyline_coords.push(coords);
            }
        }
    }
    skyline_ids.sort_unstable();
    skyline_ids
}

fn dominated_by_any(skyline: &[Vec<f64>], p: &[f64]) -> bool {
    skyline.iter().any(|s| dominates_min(s, p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, clustered, independent};
    use skydiver_data::Dataset;

    fn check(ds: &Dataset) {
        let tree = RTree::bulk_load(ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        assert_eq!(bbs(&tree, &mut pool), naive_skyline(ds, &MinDominance));
    }

    #[test]
    fn matches_naive_independent() {
        check(&independent(800, 3, 60));
    }

    #[test]
    fn matches_naive_anticorrelated() {
        check(&anticorrelated(600, 3, 61));
    }

    #[test]
    fn matches_naive_clustered() {
        check(&clustered(600, 2, 5, 0.05, 62));
    }

    #[test]
    fn matches_naive_with_duplicates() {
        let mut rows: Vec<[f64; 2]> = vec![[0.3, 0.3]; 5];
        rows.extend_from_slice(&[[0.1, 0.9], [0.9, 0.1], [0.5, 0.5], [0.2, 0.2]]);
        check(&Dataset::from_rows(2, &rows));
    }

    #[test]
    fn empty_tree_yields_empty_skyline() {
        let tree = RTree::with_default_pages(2);
        let mut pool = BufferPool::new(16);
        assert!(bbs(&tree, &mut pool).is_empty());
    }

    #[test]
    fn poisoned_pool_stops_the_traversal() {
        use skydiver_rtree::FaultInjection;
        let ds = independent(5000, 3, 64);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut clean = BufferPool::new(1 << 20);
        let full = bbs(&tree, &mut clean);
        let mut pool = BufferPool::new(1 << 20);
        pool.inject_faults(FaultInjection::at_access(1));
        let partial = bbs(&tree, &mut pool);
        assert!(pool.poisoned(), "injected fault must register");
        assert!(
            partial.len() < full.len(),
            "traversal bailed early: {} vs {}",
            partial.len(),
            full.len()
        );
    }

    #[test]
    fn bbs_visits_fewer_pages_than_full_traversal() {
        // I/O-optimality in spirit: on correlated-ish data the dominated
        // subtrees must be pruned, so BBS reads well under all pages.
        let ds = independent(20_000, 2, 63);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let _ = bbs(&tree, &mut pool);
        let touched = pool.stats().faults;
        assert!(
            (touched as usize) < tree.num_pages() / 2,
            "BBS touched {touched} of {} pages",
            tree.num_pages()
        );
    }
}
