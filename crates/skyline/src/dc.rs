//! Divide-&-conquer skyline.
//!
//! Splits the input in halves, computes the partial skylines recursively
//! and merges them by mutual cross-filtering. This is the simple (always
//! correct) merge variant rather than the median-partition one: the merge
//! compares the two partial skylines in both directions, so no ordering
//! assumptions are needed.

use skydiver_data::dominance::Dominance;
use skydiver_data::{Dataset, DominanceOrd};

/// Cut-off below which recursion bottoms out into a window scan.
const LEAF_SIZE: usize = 64;

/// Divide-&-conquer skyline. Returns skyline indices in ascending order.
pub fn dc<O>(ds: &Dataset, ord: &O) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut out = dc_rec(ds, ord, &idx);
    out.sort_unstable();
    out
}

fn dc_rec<O>(ds: &Dataset, ord: &O, idx: &[usize]) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    if idx.len() <= LEAF_SIZE {
        return window_scan(ds, ord, idx);
    }
    let (a, b) = idx.split_at(idx.len() / 2);
    let sa = dc_rec(ds, ord, a);
    let sb = dc_rec(ds, ord, b);
    merge(ds, ord, sa, sb)
}

/// BNL-style scan over an index subset.
fn window_scan<O>(ds: &Dataset, ord: &O, idx: &[usize]) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    let mut window: Vec<usize> = Vec::new();
    'points: for &i in idx {
        let p = ds.point(i);
        let mut w = 0;
        while w < window.len() {
            match ord.dom_cmp(ds.point(window[w]), p) {
                Dominance::Dominates => continue 'points,
                Dominance::DominatedBy => {
                    window.swap_remove(w);
                }
                _ => w += 1,
            }
        }
        window.push(i);
    }
    window
}

/// Skyline of the union of two partial skylines.
fn merge<O>(ds: &Dataset, ord: &O, sa: Vec<usize>, sb: Vec<usize>) -> Vec<usize>
where
    O: DominanceOrd<Item = [f64]>,
{
    // Members of each side are mutually non-dominated, so only
    // cross-side comparisons are needed.
    let keep_b: Vec<usize> = sb
        .iter()
        .copied()
        .filter(|&j| !sa.iter().any(|&i| ord.dominates(ds.point(i), ds.point(j))))
        .collect();
    let mut out: Vec<usize> = sa
        .into_iter()
        .filter(|&i| {
            !keep_b
                .iter()
                .any(|&j| ord.dominates(ds.point(j), ds.point(i)))
        })
        .collect();
    out.extend(keep_b);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_skyline;
    use skydiver_data::dominance::MinDominance;
    use skydiver_data::generators::{anticorrelated, correlated, independent};

    #[test]
    fn matches_naive_across_distributions() {
        for (seed, ds) in [
            (0, independent(700, 3, 50)),
            (1, anticorrelated(700, 3, 51)),
            (2, correlated(700, 3, 52)),
        ] {
            assert_eq!(
                dc(&ds, &MinDominance),
                naive_skyline(&ds, &MinDominance),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn small_inputs_hit_leaf_path() {
        let ds = independent(10, 2, 53);
        assert_eq!(dc(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
        let empty = Dataset::new(3);
        assert!(dc(&empty, &MinDominance).is_empty());
    }

    #[test]
    fn cross_filter_removes_both_directions() {
        // Construct halves so that dominance flows both ways across the
        // recursion boundary (index order matters for the split).
        let ds = Dataset::from_rows(
            2,
            &(0..200)
                .map(|i| {
                    if i < 100 {
                        [1.0 + (i as f64) * 0.01, 2.0]
                    } else {
                        [0.5, 1.0 + ((i - 100) as f64) * 0.01]
                    }
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(dc(&ds, &MinDominance), naive_skyline(&ds, &MinDominance));
    }
}
