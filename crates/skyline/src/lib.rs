//! Skyline computation algorithms for the SkyDiver framework.
//!
//! SkyDiver assumes the skyline set `S` is available before
//! diversification starts ("provided that the skyline set is available",
//! §4.1.1). This crate supplies it in every setting the paper mentions:
//!
//! * [`mod@bnl`] — Block-Nested-Loops (Börzsönyi et al.), index-free, also in
//!   a generic form for categorical / partially-ordered domains,
//! * [`mod@sfs`] — Sort-Filter-Skyline (presort by a monotone score),
//! * [`mod@dc`] — divide & conquer with pairwise skyline merging,
//! * [`mod@bbs`] — Branch-and-Bound Skyline over the aggregate R*-tree
//!   (Papadias et al.), the paper's preferred progressive, I/O-optimal
//!   algorithm,
//! * [`streaming`] — the randomized multi-pass streaming skyline of Das
//!   Sarma et al. (the paper's \[11\]) with bounded working memory,
//! * [`external`] — the LESS external-memory skyline in the I/O model
//!   of the paper's \[29\],
//! * [`ranking`] — top-k dominating queries (Yiu & Mamoulis, \[36\]),
//! * [`naive`] — the `O(n²)` oracle used to property-test all of the
//!   above.

#![warn(missing_docs)]

pub mod bbs;
pub mod bnl;
pub mod dc;
pub mod external;
pub mod naive;
pub mod ranking;
pub mod sfs;
pub mod streaming;

pub use bbs::bbs;
pub use bnl::{bnl, bnl_generic};
pub use dc::dc;
pub use external::{less_skyline, ExternalConfig, ExternalStats};
pub use naive::naive_skyline;
pub use ranking::{top_k_dominating_scan, top_k_dominating_tree};
pub use sfs::{sfs, sfs_with_score};
pub use streaming::{streaming_skyline, StreamingStats};

use skydiver_data::{Dataset, DominanceOrd};

/// Checks that `candidate` (point indices) is exactly the skyline of
/// `ds` under `ord`: no member is dominated and every non-member is.
///
/// `O(n²)`; intended for tests and debugging.
pub fn is_skyline<O>(ds: &Dataset, ord: &O, candidate: &[usize]) -> bool
where
    O: DominanceOrd<Item = [f64]>,
{
    let mut member = vec![false; ds.len()];
    for &i in candidate {
        if i >= ds.len() || member[i] {
            return false;
        }
        member[i] = true;
    }
    for (i, p) in ds.iter().enumerate() {
        let dominated = ds.iter().any(|q| ord.dominates(q, p));
        if member[i] == dominated {
            return false;
        }
    }
    true
}
