//! `skydiver` — command-line interface to the framework.
//!
//! ```text
//! skydiver generate --family ant --n 100000 --d 4 --out data.csv
//! skydiver skyline  --input data.csv --algo sfs
//! skydiver diversify --input data.csv --k 5 [--method lsh --xi 0.2 --buckets 20]
//!                    [--prefs min,min,max,min]
//! skydiver run      --input data.csv --k 5 --threads 4 [--timeout-ms 5000]
//!                   [--format json]
//! skydiver fingerprint --input data.csv --t 100 --out data.skysig
//! skydiver select   --signatures data.skysig --k 5
//! skydiver serve    --addr 127.0.0.1:7878 --threads 4 --cache-bytes 67108864
//! skydiver query    --addr 127.0.0.1:7878 --dataset hotels --k 5 [--format json]
//! skydiver query    --addr 127.0.0.1:7878 --load hotels --path data.csv
//! skydiver query    --addr 127.0.0.1:7878 --stats | --shutdown
//! skydiver info     --input data.csv
//! ```
//!
//! `fingerprint` runs the expensive one-pass phase once; `select` then
//! answers any number of `k` / LSH configurations from the saved
//! signature bundle without touching the data again. `serve` keeps that
//! reuse resident: a long-lived worker-pool server whose fingerprint
//! cache answers repeated queries without re-fingerprinting; `query` is
//! its line-protocol client.
//!
//! Flags are strict: an unknown or misspelled `--flag` is an error, not
//! a silently applied default, and a malformed value (`--k five`) is
//! reported rather than swallowed.
//!
//! CSV files are headerless rows of floats (one point per line); the
//! binary `.sky` snapshot format of `skydiver::data::io` is also
//! accepted (detected by extension).

use std::collections::HashMap;
use std::process::ExitCode;

use skydiver::data::dominance::MinDominance;
use skydiver::data::{generators, io, surrogates};
use skydiver::serve::protocol::{json_escape, json_u64_array, BatchSpec, Method, QuerySpec};
use skydiver::serve::{Client, ClusterConfig, Server, ServerConfig};
use skydiver::skyline as sky;
use skydiver::{Dataset, DiverseResult, Preference, SkyDiver};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, flags) = match parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "skyline" => cmd_skyline(&flags),
        "diversify" => cmd_diversify(&flags),
        "run" => cmd_run(&flags),
        "fingerprint" => cmd_fingerprint(&flags),
        "select" => cmd_select(&flags),
        "serve" => cmd_serve(&flags),
        "query" => cmd_query(&flags),
        "info" => cmd_info(&flags),
        _ => unreachable!("parse() validated the command"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  skydiver generate  --family ind|ant|cor|fc|rec --n N --d D [--seed S] --out FILE
  skydiver skyline   --input FILE [--algo bnl|sfs|dc|streaming] [--prefs min,max,...]
  skydiver diversify --input FILE --k K [--t 100] [--method mh|lsh]
                     [--xi 0.2] [--buckets 20] [--prefs min,max,...] [--threads N]
                     [--seed S] [--timeout-ms MS] [--max-memory BYTES]
  skydiver run       --input FILE --k K [--t 100] [--method mh|lsh]
                     [--xi 0.2] [--buckets 20] [--prefs min,max,...] [--threads N]
                     [--seed S] [--timeout-ms MS] [--max-memory BYTES]
                     [--max-dominance-tests N] [--format text|json] [--shards N]
  skydiver fingerprint --input FILE --out FILE.skysig [--t 100] [--seed S] [--prefs ...]
  skydiver select    --signatures FILE.skysig --k K [--method mh|lsh]
                     [--xi 0.2] [--buckets 20]
  skydiver serve     [--addr 127.0.0.1:7878] [--threads 4] [--cache-bytes 67108864]
                     [--store-dir DIR] [--read-timeout-ms 30000]
                     [--write-timeout-ms 30000] [--max-line-bytes 65536]
                     [--max-frame-bytes 268435456]
                     [--workers host:port,...] [--replication 1]
                     [--cluster-shards 4] [--fanout-timeout-ms 10000]
  skydiver query     [--addr 127.0.0.1:7878] --dataset NAME --k K
                     [--method mh|lsh|greedy] [--t 100] [--seed S] [--xi 0.2]
                     [--buckets 20] [--prefs min,max,...] [--timeout-ms MS]
                     [--max-dominance-tests N] [--format text|json] [--binary]
  skydiver query     [--addr ...] --dataset NAME --batch K:METHOD[,K:METHOD...]
                     (one fingerprint, many selections; METHOD is mh or
                      lsh:XI:BUCKETS, e.g. --batch 5:mh,10:lsh:0.2:20)
  skydiver query     [--addr ...] --load NAME --path FILE   (install a dataset)
  skydiver query     [--addr ...] --append NAME --path FILE (grow it by one shard)
  skydiver query     [--addr ...] --join ADDR | --leave ADDR  (reshape the cluster)
  skydiver query     [--addr ...] --stats | --shutdown
  skydiver query     [--addr ...] --snapshot | --restore    (flush / re-sweep the store)
  skydiver info      --input FILE";

/// Per-command flag allowlists — an unknown `--flag` is an error, never
/// a silently ignored typo.
const COMMANDS: &[(&str, &[&str])] = &[
    ("generate", &["family", "n", "d", "seed", "out"]),
    ("skyline", &["input", "algo", "prefs"]),
    (
        "diversify",
        &[
            "input",
            "k",
            "t",
            "method",
            "xi",
            "buckets",
            "prefs",
            "threads",
            "seed",
            "timeout-ms",
            "max-memory",
        ],
    ),
    (
        "run",
        &[
            "input",
            "k",
            "t",
            "method",
            "xi",
            "buckets",
            "prefs",
            "threads",
            "seed",
            "timeout-ms",
            "max-memory",
            "max-dominance-tests",
            "format",
            "shards",
        ],
    ),
    ("fingerprint", &["input", "out", "t", "seed", "prefs"]),
    ("select", &["signatures", "k", "method", "xi", "buckets"]),
    (
        "serve",
        &[
            "addr",
            "threads",
            "cache-bytes",
            "store-dir",
            "read-timeout-ms",
            "write-timeout-ms",
            "max-line-bytes",
            "max-frame-bytes",
            "workers",
            "replication",
            "cluster-shards",
            "fanout-timeout-ms",
        ],
    ),
    (
        "query",
        &[
            "addr",
            "dataset",
            "k",
            "method",
            "t",
            "seed",
            "xi",
            "buckets",
            "prefs",
            "timeout-ms",
            "max-dominance-tests",
            "format",
            "load",
            "append",
            "path",
            "stats",
            "shutdown",
            "snapshot",
            "restore",
            "join",
            "leave",
            "binary",
            "batch",
        ],
    ),
    ("info", &["input"]),
];

/// Flags that take no value (presence means `true`).
const BOOL_FLAGS: &[&str] = &["stats", "shutdown", "snapshot", "restore", "binary"];

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Result<(String, Flags), String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().ok_or("no command given")?.clone();
    let allowed = COMMANDS
        .iter()
        .find(|(name, _)| *name == cmd)
        .map(|(_, flags)| *flags)
        .ok_or_else(|| format!("unknown command {cmd:?}"))?;
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {a:?}"))?
            .to_string();
        if !allowed.contains(&key.as_str()) {
            return Err(format!(
                "unknown flag --{key} for {cmd:?} (expected one of: {})",
                allowed
                    .iter()
                    .map(|f| format!("--{f}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        let val = if BOOL_FLAGS.contains(&key.as_str()) {
            "true".to_string()
        } else {
            match it.peek() {
                Some(next) if !next.starts_with("--") => it.next().unwrap().clone(),
                _ => return Err(format!("flag --{key} needs a value")),
            }
        };
        if flags.insert(key.clone(), val).is_some() {
            return Err(format!("flag --{key} given twice"));
        }
    }
    Ok((cmd, flags))
}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    msg.into().into()
}

fn flag<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| err(format!("missing --{key}")))
}

/// A numeric flag with a default. Unlike a silent `unwrap_or`, a present
/// but malformed value is an error.
fn num<T: std::str::FromStr>(
    flags: &Flags,
    key: &str,
    default: T,
) -> Result<T, Box<dyn std::error::Error>> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| err(format!("bad value {v:?} for --{key}"))),
    }
}

/// An optional numeric flag (no default).
fn opt_num<T: std::str::FromStr>(
    flags: &Flags,
    key: &str,
) -> Result<Option<T>, Box<dyn std::error::Error>> {
    match flags.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| err(format!("bad value {v:?} for --{key}"))),
    }
}

/// `--format text|json` (default text). Returns `true` for JSON.
fn json_format(flags: &Flags) -> Result<bool, Box<dyn std::error::Error>> {
    match flags.get("format").map(|s| s.as_str()) {
        None | Some("text") => Ok(false),
        Some("json") => Ok(true),
        Some(other) => Err(err(format!("bad value {other:?} for --format (text|json)"))),
    }
}

fn load(path: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    if path.ends_with(".sky") {
        Ok(io::read_binary(path)?)
    } else {
        Ok(io::read_csv(path)?)
    }
}

fn prefs_for(flags: &Flags, dims: usize) -> Result<Vec<Preference>, Box<dyn std::error::Error>> {
    skydiver::serve::parse_prefs(flags.get("prefs").map(|s| s.as_str()), dims)
        .map(|(prefs, _)| prefs)
        .map_err(err)
}

fn cmd_generate(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let family = flag(flags, "family")?;
    let n: usize = num(flags, "n", 100_000)?;
    let d: usize = num(flags, "d", 4)?;
    let seed: u64 = num(flags, "seed", 42)?;
    let out = flag(flags, "out")?;
    let ds = match family {
        "ind" => generators::independent(n, d, seed),
        "ant" => generators::anticorrelated(n, d, seed),
        "cor" => generators::correlated(n, d, seed),
        "fc" => surrogates::forest_cover(n, seed).project(d.min(surrogates::FC_DIMS)),
        "rec" => surrogates::recipes(n, seed).project(d.min(surrogates::REC_DIMS)),
        other => return Err(err(format!("unknown family {other:?}"))),
    };
    if out.ends_with(".sky") {
        io::write_binary(&ds, out)?;
    } else {
        io::write_csv(&ds, out)?;
    }
    println!("wrote {} points ({}D) to {out}", ds.len(), ds.dims());
    Ok(())
}

fn cmd_skyline(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let canon = skydiver::core::canonicalise(&ds, &prefs)?;
    let algo = flags.get("algo").map(|s| s.as_str()).unwrap_or("sfs");
    let skyline = match algo {
        "bnl" => sky::bnl(&canon, &MinDominance),
        "sfs" => sky::sfs(canon.as_ref(), &MinDominance),
        "dc" => sky::dc(&canon, &MinDominance),
        "streaming" => sky::streaming_skyline(&canon, &MinDominance, 64, 1).0,
        other => return Err(err(format!("unknown algorithm {other:?}"))),
    };
    // Lock + buffer stdout; treat a closed pipe (e.g. `| head`) as a
    // normal early exit.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let _ = writeln!(
        out,
        "# skyline: {} of {} points ({algo})",
        skyline.len(),
        ds.len()
    );
    for &i in &skyline {
        let row: Vec<String> = ds.point(i).iter().map(|v| v.to_string()).collect();
        if writeln!(out, "{i},{}", row.join(",")).is_err() {
            break;
        }
    }
    let _ = out.flush();
    Ok(())
}

/// Builds the `SkyDiver` pipeline + budget shared by `diversify`/`run`.
fn pipeline_for(flags: &Flags, k: usize) -> Result<SkyDiver, Box<dyn std::error::Error>> {
    let mut pipeline = SkyDiver::new(k)
        .signature_size(num(flags, "t", 100)?)
        .hash_seed(num(flags, "seed", 0)?)
        .threads(num(flags, "threads", 1)?);
    match flags.get("method").map(|s| s.as_str()) {
        None | Some("mh") => {}
        Some("lsh") => {
            pipeline = pipeline.lsh(num(flags, "xi", 0.2)?, num(flags, "buckets", 20)?);
        }
        Some(other) => return Err(err(format!("unknown method {other:?} (mh|lsh)"))),
    }
    // Optional run budget: a tripped budget yields a partial result with
    // a degradation report, not an error.
    let mut budget = skydiver::RunBudget::none();
    if let Some(ms) = opt_num::<u64>(flags, "timeout-ms")? {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(bytes) = opt_num::<usize>(flags, "max-memory")? {
        budget = budget.with_max_memory_bytes(bytes);
    }
    if let Some(n) = opt_num::<u64>(flags, "max-dominance-tests")? {
        budget = budget.with_max_dominance_tests(n);
    }
    Ok(pipeline.budget(budget))
}

fn print_result_text(ds: &Dataset, r: &DiverseResult, label: &str) {
    println!(
        "# skyline {} points; {} most diverse below ({label}fingerprint {:.1}ms, select {:.1}ms, {} bytes)",
        r.skyline.len(),
        r.selected.len(),
        r.fingerprint_ms,
        r.selection_ms,
        r.memory_bytes
    );
    if !r.is_complete() {
        eprintln!("warning: degraded run — {}", r.degradation.summary());
    }
    for (&idx, &pos) in r.selected.iter().zip(&r.selected_positions) {
        let row: Vec<String> = ds.point(idx).iter().map(|v| v.to_string()).collect();
        println!("{idx},{},gamma={}", row.join(","), r.scores[pos]);
    }
}

fn print_result_json(r: &DiverseResult) {
    let selected: Vec<String> = r.selected.iter().map(|i| i.to_string()).collect();
    let gamma: Vec<String> = r
        .selected_positions
        .iter()
        .map(|&p| r.scores[p].to_string())
        .collect();
    println!(
        concat!(
            "{{\"skyline\":{},\"selected\":[{}],\"gamma\":[{}],",
            "\"fingerprint_ms\":{:.3},\"selection_ms\":{:.3},\"memory_bytes\":{},",
            "\"degraded\":{},\"status\":\"{}\"}}"
        ),
        r.skyline.len(),
        selected.join(","),
        gamma.join(","),
        r.fingerprint_ms,
        r.selection_ms,
        r.memory_bytes,
        !r.is_complete(),
        json_escape(&r.degradation.summary()),
    );
}

fn cmd_diversify(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let k: usize = flag(flags, "k")?
        .parse()
        .map_err(|_| err("bad value for --k"))?;
    let r = pipeline_for(flags, k)?.run(&ds, &prefs)?;
    print_result_text(&ds, &r, "");
    Ok(())
}

/// `skydiver run` — the full auto pipeline: index-based fingerprinting
/// with automatic index-free fallback (`run_auto`), parallel over
/// `--threads`, under an optional run budget. With `--shards N > 1` the
/// data is partitioned into N contiguous shards and fingerprinted as a
/// merge of per-shard folds — bit-identical to the monolithic pass.
fn cmd_run(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let k: usize = flag(flags, "k")?
        .parse()
        .map_err(|_| err("bad value for --k"))?;
    let threads: usize = num(flags, "threads", 1)?;
    let shards: usize = num(flags, "shards", 1)?;
    let pipeline = pipeline_for(flags, k)?;
    // An explicit --shards always takes the sharded index-free fold —
    // even --shards 1 — so the flag's output is partition-invariant and
    // comparable across shard counts.
    let (r, label) = if flags.contains_key("shards") {
        if shards == 0 {
            return Err(err("bad value for --shards"));
        }
        let sd = skydiver::data::ShardedDataset::partition(&ds, shards);
        let run = pipeline.fingerprint_sharded(&sd, &prefs)?;
        (
            pipeline.select_from(&run.fingerprint)?,
            format!("threads {threads}, shards {}, ", sd.num_shards()),
        )
    } else {
        (
            pipeline.run_auto(&ds, &prefs)?,
            format!("threads {threads}, "),
        )
    };
    if json_format(flags)? {
        print_result_json(&r);
    } else {
        print_result_text(&ds, &r, &label);
    }
    Ok(())
}

fn cmd_fingerprint(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    use skydiver::core::minhash::persist;
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let out_path = flag(flags, "out")?;
    let t: usize = num(flags, "t", 100)?;
    let canon = skydiver::core::canonicalise(&ds, &prefs)?;
    let skyline = sky::sfs(canon.as_ref(), &MinDominance);
    let fam = skydiver::HashFamily::new(t, num(flags, "seed", 0)?);
    let out = skydiver::core::sig_gen_if(canon.as_ref(), &MinDominance, &skyline, &fam);
    persist::write_signatures(&out, out_path)?;
    println!(
        "fingerprinted {} skyline points of {} (t = {t}) into {out_path}",
        skyline.len(),
        ds.len()
    );
    Ok(())
}

fn cmd_select(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    use skydiver::core::minhash::persist;
    use skydiver::core::{
        select_diverse, LshDistance, LshIndex, LshParams, SeedRule, SignatureDistance, TieBreak,
    };
    let out = persist::read_signatures(flag(flags, "signatures")?)?;
    let k: usize = flag(flags, "k")?
        .parse()
        .map_err(|_| err("bad value for --k"))?;
    let positions = if flags.get("method").map(|s| s.as_str()) == Some("lsh") {
        let params = LshParams::from_threshold(out.matrix.t(), num(flags, "xi", 0.2)?)?;
        let idx = LshIndex::build(&out.matrix, params, num(flags, "buckets", 20)?, 0)?;
        let mut dist = LshDistance::new(&idx);
        select_diverse(
            &mut dist,
            &out.scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )?
    } else {
        let mut dist = SignatureDistance::new(&out.matrix);
        select_diverse(
            &mut dist,
            &out.scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )?
    };
    println!(
        "# {k} most diverse of {} skyline points (skyline position, gamma):",
        out.matrix.m()
    );
    for &p in &positions {
        println!("{p},gamma={}", out.scores[p]);
    }
    Ok(())
}

/// `skydiver serve` — bind the query service and run until `SHUTDOWN`.
/// `--store-dir` makes fingerprints durable (warm restarts); the
/// timeout/line-cap flags bound how long a silent or dribbling client
/// can hold a worker. `--workers` makes this server a cluster
/// coordinator over the listed nodes.
fn cmd_serve(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let defaults = ServerConfig::default();
    let cluster_defaults = ClusterConfig::default();
    let cluster = match flags.get("workers") {
        Some(list) => {
            let workers: Vec<String> = list
                .split(',')
                .map(|w| w.trim().to_string())
                .filter(|w| !w.is_empty())
                .collect();
            if workers.is_empty() {
                return Err(err("--workers needs at least one host:port"));
            }
            Some(ClusterConfig {
                workers,
                replication: num(flags, "replication", cluster_defaults.replication)?,
                shards: num(flags, "cluster-shards", cluster_defaults.shards)?,
                fanout_timeout_ms: num(
                    flags,
                    "fanout-timeout-ms",
                    cluster_defaults.fanout_timeout_ms,
                )?,
            })
        }
        None => {
            for f in ["replication", "cluster-shards", "fanout-timeout-ms"] {
                if flags.contains_key(f) {
                    return Err(err(format!("--{f} needs --workers (coordinator mode)")));
                }
            }
            None
        }
    };
    let cfg = ServerConfig {
        addr: flags
            .get("addr")
            .cloned()
            .unwrap_or_else(|| "127.0.0.1:7878".into()),
        threads: num(flags, "threads", 4)?,
        cache_bytes: num(flags, "cache-bytes", 64 << 20)?,
        store_dir: flags.get("store-dir").cloned(),
        read_timeout_ms: num(flags, "read-timeout-ms", defaults.read_timeout_ms)?,
        write_timeout_ms: num(flags, "write-timeout-ms", defaults.write_timeout_ms)?,
        max_line_bytes: num(flags, "max-line-bytes", defaults.max_line_bytes)?,
        max_frame_bytes: num(flags, "max-frame-bytes", defaults.max_frame_bytes)?,
        cluster,
    };
    let server = Server::bind(&cfg)?;
    eprintln!(
        "skydiver-serve listening on {} ({} workers, {} byte fingerprint cache{}{})",
        server.local_addr()?,
        cfg.threads.max(1),
        cfg.cache_bytes,
        match &cfg.store_dir {
            Some(dir) => format!(", store {dir}"),
            None => ", no store".to_string(),
        },
        match &cfg.cluster {
            Some(c) => format!(
                ", coordinating {} node(s) at replication {}",
                c.workers.len(),
                c.replication.max(1)
            ),
            None => String::new(),
        }
    );
    server.run()?;
    Ok(())
}

/// Parses `--batch`'s `K:METHOD[,K:METHOD...]` list into `(k, method)`
/// selections (METHOD is `mh` or `lsh:XI:BUCKETS`).
fn parse_batch_items(spec: &str) -> Result<Vec<(usize, Method)>, Box<dyn std::error::Error>> {
    let mut items = Vec::new();
    for item in spec.split(',').filter(|s| !s.trim().is_empty()) {
        let parts: Vec<&str> = item.trim().split(':').collect();
        let bad = || err(format!("bad batch item {item:?} (want K:mh or K:lsh:XI:BUCKETS)"));
        let k: usize = parts
            .first()
            .and_then(|v| v.parse().ok())
            .ok_or_else(bad)?;
        let method = match parts.get(1..) {
            Some(["mh"]) => Method::MinHash,
            Some(["lsh", xi, buckets]) => Method::Lsh {
                xi: xi.parse().map_err(|_| bad())?,
                buckets: buckets.parse().map_err(|_| bad())?,
            },
            _ => return Err(bad()),
        };
        items.push((k, method));
    }
    if items.is_empty() {
        return Err(err("--batch needs at least one K:METHOD item"));
    }
    Ok(items)
}

/// `skydiver query` — line-protocol client: LOAD / QUERY / BATCH /
/// STATS / SHUTDOWN against a running `skydiver serve`. `--binary`
/// negotiates the `SKYWIRE01` framing before the request goes out.
fn cmd_query(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let addr = flags
        .get("addr")
        .map(|s| s.as_str())
        .unwrap_or("127.0.0.1:7878");
    let mut client =
        Client::connect(addr).map_err(|e| err(format!("cannot connect to {addr}: {e}")))?;
    if flags.contains_key("binary") {
        client.hello().map_err(err)?;
    }
    if flags.contains_key("stats") {
        println!("{}", client.stats().map_err(err)?);
        return Ok(());
    }
    if flags.contains_key("shutdown") {
        println!("{}", client.shutdown().map_err(err)?);
        return Ok(());
    }
    if flags.contains_key("snapshot") {
        println!("{}", client.snapshot().map_err(err)?);
        return Ok(());
    }
    if flags.contains_key("restore") {
        println!("{}", client.restore().map_err(err)?);
        return Ok(());
    }
    if let Some(node) = flags.get("join") {
        println!(
            "{}",
            client.exchange(&format!("JOIN addr={node}")).map_err(err)?
        );
        return Ok(());
    }
    if let Some(node) = flags.get("leave") {
        println!(
            "{}",
            client
                .exchange(&format!("LEAVE addr={node}"))
                .map_err(err)?
        );
        return Ok(());
    }
    if let Some(name) = flags.get("load") {
        let path = flag(flags, "path")?;
        println!("{}", client.load(name, path).map_err(err)?);
        return Ok(());
    }
    if let Some(name) = flags.get("append") {
        let path = flag(flags, "path")?;
        println!("{}", client.append(name, path).map_err(err)?);
        return Ok(());
    }
    if let Some(items) = flags.get("batch") {
        let dataset = flag(flags, "dataset")?;
        let mut spec = BatchSpec::new(dataset, parse_batch_items(items)?);
        spec.t = num(flags, "t", spec.t)?;
        spec.seed = num(flags, "seed", spec.seed)?;
        spec.prefs = flags.get("prefs").cloned();
        spec.timeout_ms = opt_num(flags, "timeout-ms")?;
        spec.max_dominance_tests = opt_num(flags, "max-dominance-tests")?;
        println!("{}", client.batch(&spec).map_err(err)?);
        return Ok(());
    }
    // A diversification query.
    let dataset = flag(flags, "dataset")?;
    let k: usize = flag(flags, "k")?
        .parse()
        .map_err(|_| err("bad value for --k"))?;
    let mut spec = QuerySpec::new(dataset, k);
    spec.t = num(flags, "t", spec.t)?;
    spec.seed = num(flags, "seed", spec.seed)?;
    spec.method = match flags.get("method").map(|s| s.as_str()) {
        None | Some("mh") => Method::MinHash,
        Some("lsh") => Method::Lsh {
            xi: num(flags, "xi", 0.2)?,
            buckets: num(flags, "buckets", 20)?,
        },
        Some("greedy") => Method::Greedy,
        Some(other) => return Err(err(format!("unknown method {other:?} (mh|lsh|greedy)"))),
    };
    spec.prefs = flags.get("prefs").cloned();
    spec.timeout_ms = opt_num(flags, "timeout-ms")?;
    spec.max_dominance_tests = opt_num(flags, "max-dominance-tests")?;
    let payload = client.query(&spec).map_err(err)?;
    if json_format(flags)? {
        println!("{payload}");
        return Ok(());
    }
    let selected = json_u64_array(&payload, "selected").unwrap_or_default();
    let gamma = json_u64_array(&payload, "gamma").unwrap_or_default();
    println!(
        "# dataset {dataset}: {} selected of {} skyline points (cached={}, fingerprint {:.1}ms, select {:.1}ms, total {:.1}ms)",
        selected.len(),
        skydiver::serve::protocol::json_u64(&payload, "skyline").unwrap_or(0),
        skydiver::serve::protocol::json_bool(&payload, "cached").unwrap_or(false),
        skydiver::serve::protocol::json_f64(&payload, "fingerprint_ms").unwrap_or(0.0),
        skydiver::serve::protocol::json_f64(&payload, "selection_ms").unwrap_or(0.0),
        skydiver::serve::protocol::json_f64(&payload, "total_ms").unwrap_or(0.0),
    );
    if skydiver::serve::protocol::json_bool(&payload, "degraded") == Some(true) {
        eprintln!("warning: degraded query");
    }
    for (idx, g) in selected.iter().zip(&gamma) {
        println!("{idx},gamma={g}");
    }
    Ok(())
}

fn cmd_info(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    println!("points: {}", ds.len());
    println!("dims:   {}", ds.dims());
    if let Some((lo, hi)) = ds.bounding_box() {
        println!("bbox lo: {lo:?}");
        println!("bbox hi: {hi:?}");
    }
    Ok(())
}
