//! `skydiver` — command-line interface to the framework.
//!
//! ```text
//! skydiver generate --family ant --n 100000 --d 4 --out data.csv
//! skydiver skyline  --input data.csv --algo sfs
//! skydiver diversify --input data.csv --k 5 [--method lsh --xi 0.2 --buckets 20]
//!                    [--prefs min,min,max,min]
//! skydiver run      --input data.csv --k 5 --threads 4 [--timeout-ms 5000]
//! skydiver fingerprint --input data.csv --t 100 --out data.skysig
//! skydiver select   --signatures data.skysig --k 5
//! skydiver info     --input data.csv
//! ```
//!
//! `fingerprint` runs the expensive one-pass phase once; `select` then
//! answers any number of `k` / LSH configurations from the saved
//! signature bundle without touching the data again.
//!
//! CSV files are headerless rows of floats (one point per line); the
//! binary `.sky` snapshot format of `skydiver::data::io` is also
//! accepted (detected by extension).

use std::collections::HashMap;
use std::process::ExitCode;

use skydiver::data::dominance::MinDominance;
use skydiver::data::{generators, io, surrogates};
use skydiver::skyline as sky;
use skydiver::{Dataset, Preference, SkyDiver};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, flags)) = parse(&args) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&flags),
        "skyline" => cmd_skyline(&flags),
        "diversify" => cmd_diversify(&flags),
        "run" => cmd_run(&flags),
        "fingerprint" => cmd_fingerprint(&flags),
        "select" => cmd_select(&flags),
        "info" => cmd_info(&flags),
        _ => {
            eprintln!("unknown command {cmd:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  skydiver generate  --family ind|ant|cor|fc|rec --n N --d D [--seed S] --out FILE
  skydiver skyline   --input FILE [--algo bnl|sfs|dc|streaming] [--prefs min,max,...]
  skydiver diversify --input FILE --k K [--t 100] [--method mh|lsh]
                     [--xi 0.2] [--buckets 20] [--prefs min,max,...] [--threads N]
                     [--timeout-ms MS] [--max-memory BYTES]
  skydiver run       --input FILE --k K [--t 100] [--method mh|lsh]
                     [--xi 0.2] [--buckets 20] [--prefs min,max,...] [--threads N]
                     [--timeout-ms MS] [--max-memory BYTES] [--max-dominance-tests N]
  skydiver fingerprint --input FILE --out FILE.skysig [--t 100] [--prefs ...]
  skydiver select    --signatures FILE.skysig --k K [--method mh|lsh]
                     [--xi 0.2] [--buckets 20]
  skydiver info      --input FILE";

type Flags = HashMap<String, String>;

fn parse(args: &[String]) -> Option<(String, Flags)> {
    let mut it = args.iter();
    let cmd = it.next()?.clone();
    let mut flags = HashMap::new();
    while let Some(a) = it.next() {
        let key = a.strip_prefix("--")?.to_string();
        let val = it.next()?.clone();
        flags.insert(key, val);
    }
    Some((cmd, flags))
}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    msg.into().into()
}

fn flag<'a>(flags: &'a Flags, key: &str) -> Result<&'a str, Box<dyn std::error::Error>> {
    flags
        .get(key)
        .map(|s| s.as_str())
        .ok_or_else(|| err(format!("missing --{key}")))
}

fn num<T: std::str::FromStr>(flags: &Flags, key: &str, default: T) -> T {
    flags
        .get(key)
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn load(path: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    if path.ends_with(".sky") {
        Ok(io::read_binary(path)?)
    } else {
        Ok(io::read_csv(path)?)
    }
}

fn prefs_for(flags: &Flags, dims: usize) -> Result<Vec<Preference>, Box<dyn std::error::Error>> {
    match flags.get("prefs") {
        None => Ok(Preference::all_min(dims)),
        Some(spec) => {
            let prefs: Result<Vec<Preference>, _> = spec
                .split(',')
                .map(|tok| match tok.trim() {
                    "min" => Ok(Preference::Min),
                    "max" => Ok(Preference::Max),
                    other => Err(err(format!("bad preference {other:?} (min|max)"))),
                })
                .collect();
            let prefs = prefs?;
            if prefs.len() != dims {
                return Err(err(format!(
                    "{} preferences for {dims}-dimensional data",
                    prefs.len()
                )));
            }
            Ok(prefs)
        }
    }
}

fn cmd_generate(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let family = flag(flags, "family")?;
    let n: usize = num(flags, "n", 100_000);
    let d: usize = num(flags, "d", 4);
    let seed: u64 = num(flags, "seed", 42);
    let out = flag(flags, "out")?;
    let ds = match family {
        "ind" => generators::independent(n, d, seed),
        "ant" => generators::anticorrelated(n, d, seed),
        "cor" => generators::correlated(n, d, seed),
        "fc" => surrogates::forest_cover(n, seed).project(d.min(surrogates::FC_DIMS)),
        "rec" => surrogates::recipes(n, seed).project(d.min(surrogates::REC_DIMS)),
        other => return Err(err(format!("unknown family {other:?}"))),
    };
    if out.ends_with(".sky") {
        io::write_binary(&ds, out)?;
    } else {
        io::write_csv(&ds, out)?;
    }
    println!("wrote {} points ({}D) to {out}", ds.len(), ds.dims());
    Ok(())
}

fn cmd_skyline(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let canon = skydiver::core::canonicalise(&ds, &prefs)?;
    let algo = flags.get("algo").map(|s| s.as_str()).unwrap_or("sfs");
    let skyline = match algo {
        "bnl" => sky::bnl(&canon, &MinDominance),
        "sfs" => sky::sfs(&canon, &MinDominance),
        "dc" => sky::dc(&canon, &MinDominance),
        "streaming" => sky::streaming_skyline(&canon, &MinDominance, 64, 1).0,
        other => return Err(err(format!("unknown algorithm {other:?}"))),
    };
    // Lock + buffer stdout; treat a closed pipe (e.g. `| head`) as a
    // normal early exit.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let _ = writeln!(out, "# skyline: {} of {} points ({algo})", skyline.len(), ds.len());
    for &i in &skyline {
        let row: Vec<String> = ds.point(i).iter().map(|v| v.to_string()).collect();
        if writeln!(out, "{i},{}", row.join(",")).is_err() {
            break;
        }
    }
    let _ = out.flush();
    Ok(())
}

fn cmd_diversify(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let k: usize = flag(flags, "k")?.parse()?;
    let t: usize = num(flags, "t", 100);
    let threads: usize = num(flags, "threads", 1);
    let mut pipeline = SkyDiver::new(k)
        .signature_size(t)
        .hash_seed(num(flags, "seed", 0))
        .threads(threads);
    if flags.get("method").map(|s| s.as_str()) == Some("lsh") {
        pipeline = pipeline.lsh(num(flags, "xi", 0.2), num(flags, "buckets", 20));
    }
    // Optional run budget: a tripped budget yields a partial result with
    // a degradation report, not an error.
    let mut budget = skydiver::RunBudget::none();
    if let Some(ms) = flags.get("timeout-ms").and_then(|v| v.parse::<u64>().ok()) {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(bytes) = flags.get("max-memory").and_then(|v| v.parse::<usize>().ok()) {
        budget = budget.with_max_memory_bytes(bytes);
    }
    pipeline = pipeline.budget(budget);
    let r = pipeline.run(&ds, &prefs)?;
    println!(
        "# skyline {} points; {} most diverse below (fingerprint {:.1}ms, select {:.1}ms, {} bytes)",
        r.skyline.len(),
        r.selected.len(),
        r.fingerprint_ms,
        r.selection_ms,
        r.memory_bytes
    );
    if !r.is_complete() {
        eprintln!("warning: degraded run — {}", r.degradation.summary());
    }
    for (&idx, &pos) in r.selected.iter().zip(&r.selected_positions) {
        let row: Vec<String> = ds.point(idx).iter().map(|v| v.to_string()).collect();
        println!("{idx},{},gamma={}", row.join(","), r.scores[pos]);
    }
    Ok(())
}

/// `skydiver run` — the full auto pipeline: index-based fingerprinting
/// with automatic index-free fallback (`run_auto`), parallel over
/// `--threads`, under an optional run budget.
fn cmd_run(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let k: usize = flag(flags, "k")?.parse()?;
    let t: usize = num(flags, "t", 100);
    let threads: usize = num(flags, "threads", 1);
    let mut pipeline = SkyDiver::new(k)
        .signature_size(t)
        .hash_seed(num(flags, "seed", 0))
        .threads(threads);
    if flags.get("method").map(|s| s.as_str()) == Some("lsh") {
        pipeline = pipeline.lsh(num(flags, "xi", 0.2), num(flags, "buckets", 20));
    }
    let mut budget = skydiver::RunBudget::none();
    if let Some(ms) = flags.get("timeout-ms").and_then(|v| v.parse::<u64>().ok()) {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(bytes) = flags.get("max-memory").and_then(|v| v.parse::<usize>().ok()) {
        budget = budget.with_max_memory_bytes(bytes);
    }
    if let Some(n) = flags.get("max-dominance-tests").and_then(|v| v.parse::<u64>().ok()) {
        budget = budget.with_max_dominance_tests(n);
    }
    pipeline = pipeline.budget(budget);
    let r = pipeline.run_auto(&ds, &prefs)?;
    println!(
        "# skyline {} points; {} most diverse below (threads {threads}, fingerprint {:.1}ms, select {:.1}ms, {} bytes)",
        r.skyline.len(),
        r.selected.len(),
        r.fingerprint_ms,
        r.selection_ms,
        r.memory_bytes
    );
    if !r.is_complete() {
        eprintln!("warning: degraded run — {}", r.degradation.summary());
    }
    for (&idx, &pos) in r.selected.iter().zip(&r.selected_positions) {
        let row: Vec<String> = ds.point(idx).iter().map(|v| v.to_string()).collect();
        println!("{idx},{},gamma={}", row.join(","), r.scores[pos]);
    }
    Ok(())
}

fn cmd_fingerprint(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    use skydiver::core::minhash::persist;
    let ds = load(flag(flags, "input")?)?;
    let prefs = prefs_for(flags, ds.dims())?;
    let out_path = flag(flags, "out")?;
    let t: usize = num(flags, "t", 100);
    let canon = skydiver::core::canonicalise(&ds, &prefs)?;
    let skyline = sky::sfs(&canon, &MinDominance);
    let fam = skydiver::HashFamily::new(t, num(flags, "seed", 0));
    let out = skydiver::core::sig_gen_if(&canon, &MinDominance, &skyline, &fam);
    persist::write_signatures(&out, out_path)?;
    println!(
        "fingerprinted {} skyline points of {} (t = {t}) into {out_path}",
        skyline.len(),
        ds.len()
    );
    Ok(())
}

fn cmd_select(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    use skydiver::core::minhash::persist;
    use skydiver::core::{
        select_diverse, LshDistance, LshIndex, LshParams, SeedRule, SignatureDistance, TieBreak,
    };
    let out = persist::read_signatures(flag(flags, "signatures")?)?;
    let k: usize = flag(flags, "k")?.parse()?;
    let positions = if flags.get("method").map(|s| s.as_str()) == Some("lsh") {
        let params = LshParams::from_threshold(out.matrix.t(), num(flags, "xi", 0.2))?;
        let idx = LshIndex::build(&out.matrix, params, num(flags, "buckets", 20), 0)?;
        let mut dist = LshDistance::new(&idx);
        select_diverse(&mut dist, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)?
    } else {
        let mut dist = SignatureDistance::new(&out.matrix);
        select_diverse(&mut dist, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)?
    };
    println!(
        "# {k} most diverse of {} skyline points (skyline position, gamma):",
        out.matrix.m()
    );
    for &p in &positions {
        println!("{p},gamma={}", out.scores[p]);
    }
    Ok(())
}

fn cmd_info(flags: &Flags) -> Result<(), Box<dyn std::error::Error>> {
    let ds = load(flag(flags, "input")?)?;
    println!("points: {}", ds.len());
    println!("dims:   {}", ds.dims());
    if let Some((lo, hi)) = ds.bounding_box() {
        println!("bbox lo: {lo:?}");
        println!("bbox hi: {hi:?}");
    }
    Ok(())
}
