//! **skydiver** — the umbrella crate of the SkyDiver skyline
//! diversification framework (EDBT 2013 reproduction).
//!
//! Re-exports the whole public API:
//!
//! * [`core`] (`skydiver-core`) — the diversification framework itself:
//!   MinHash fingerprinting, LSH, greedy max–min dispersion, baselines,
//!   the [`SkyDiver`] pipeline,
//! * [`data`] (`skydiver-data`) — datasets, generators, surrogates,
//!   dominance orders (numeric / categorical / partially ordered),
//! * [`rtree`] (`skydiver-rtree`) — the aggregate R*-tree with simulated
//!   paged I/O,
//! * [`serve`] (`skydiver-serve`) — the long-lived query service:
//!   dataset registry, fingerprint cache, line-protocol server/client,
//! * [`skyline`] (`skydiver-skyline`) — BNL / SFS / D&C / BBS skyline
//!   algorithms.
//!
//! ```
//! use skydiver::{SkyDiver, Preference};
//! use skydiver::data::generators;
//!
//! let data = generators::independent(5_000, 3, 7);
//! let diverse = SkyDiver::new(3)
//!     .run(&data, &Preference::all_min(3))
//!     .unwrap();
//! assert_eq!(diverse.selected.len(), 3);
//! ```

pub use skydiver_core as core;
pub use skydiver_data as data;
pub use skydiver_rtree as rtree;
pub use skydiver_serve as serve;
pub use skydiver_skyline as skyline;

pub use skydiver_core::{
    CancelToken, Degradation, DegradationEvent, DiverseResult, DominanceGraph, ExecPhase,
    Fingerprint, GammaSets, HashFamily, Interrupt, LshIndex, LshParams, Result, RunBudget,
    SeedRule, SelectionMethod, SignatureMatrix, SkyDiver, SkyDiverError, StopReason, TieBreak,
};
pub use skydiver_data::{Dataset, Preference};
pub use skydiver_rtree::{FaultInjection, ReadFailure};
