//! Durability property suite for the on-disk signature store, plus the
//! wire-level `SNAPSHOT`/`RESTORE` verbs and connection hardening.
//!
//! The core property: under every injected disk fault — torn write,
//! short read, bit flip, ENOSPC, rename failure — a restart serves
//! either a **bit-identical** fingerprint from the store or a **clean
//! cold recompute** of the same answer. Never a wrong answer, never a
//! crash, never a refusal to serve.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use skydiver::core::RunBudget;
use skydiver::data::generators::anticorrelated;
use skydiver::data::ShardedDataset;
use skydiver::serve::protocol::{json_u64, json_u64_array, QuerySpec};
use skydiver::serve::{
    parse_prefs, Client, DiskFault, FaultPlan, Metrics, Registry, Server, ServerConfig,
    ServerHandle, SignatureStore,
};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("skydiver-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// A budget that never trips but keeps the dominance-test counter on.
fn counted() -> RunBudget {
    RunBudget::none().with_max_dominance_tests(u64::MAX)
}

fn store_registry(dir: &Path, faults: &[FaultPlan]) -> (Registry, Arc<Metrics>, usize) {
    let metrics = Arc::new(Metrics::new());
    let (store, report) =
        SignatureStore::open(dir, Arc::clone(&metrics), faults).expect("open store");
    let valid = report.valid;
    let reg = Registry::with_store(1 << 24, Arc::clone(&metrics), Some(Arc::new(store)));
    (reg, metrics, valid)
}

/// The tentpole property: arm each fault at the first artefact write of
/// a two-shard dataset, restart, and assert the served fingerprint is
/// bit-identical to the pre-fault cold run — from the store where the
/// artefact survived, from a recompute where it did not. A second
/// restart then proves the store self-healed.
#[test]
fn every_disk_fault_degrades_cleanly_and_self_heals() {
    use std::sync::atomic::Ordering::Relaxed;
    // (fault, artefacts expected valid at restart, quarantined at restart)
    let matrix: &[(DiskFault, usize, usize)] = &[
        // Rename landed on a truncated payload: the sweep quarantines it.
        (DiskFault::TornWrite { keep: 100 }, 1, 1),
        // Truncated below the 64-byte header, too.
        (DiskFault::TornWrite { keep: 17 }, 1, 1),
        // Written in full, truncated at rest.
        (DiskFault::ShortRead { keep: 50 }, 1, 1),
        // Silent media corruption: the checksum footer catches it.
        (DiskFault::BitFlip { byte: 90 }, 1, 1),
        // The write itself failed: nothing durable, nothing to sweep.
        (DiskFault::Enospc, 1, 0),
        (DiskFault::RenameFail, 1, 0),
    ];
    let (prefs, key) = parse_prefs(None, 3).unwrap();
    let base = anticorrelated(3_000, 3, 41);

    for (i, &(fault, want_valid, want_quarantined)) in matrix.iter().enumerate() {
        let dir = tmp_dir(&format!("fault{i}"));

        // Epoch 1: cold compute under the armed fault (both shard folds
        // are enqueued; the fault strikes the first write).
        let (reg, m1, _) = store_registry(&dir, &[FaultPlan { at_write: 1, fault }]);
        reg.insert_sharded("d", ShardedDataset::partition(&base, 2));
        let (cold, _, cold_tests) =
            reg.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
        assert!(cold_tests > 0, "{fault:?}: cold run charges tests");
        reg.store_snapshot().unwrap();
        let failed_writes = m1.store_write_failures.load(Relaxed);
        match fault {
            DiskFault::Enospc | DiskFault::RenameFail => {
                assert_eq!(failed_writes, 1, "{fault:?}: the failed write is counted")
            }
            _ => assert_eq!(failed_writes, 0, "{fault:?}: the protocol believed it succeeded"),
        }
        drop(reg);

        // Epoch 2 ("restart"): the recovery sweep classifies the damage,
        // then the first query must answer bit-identically — warm where
        // the artefact survived, recomputed where it did not.
        let (reg2, m2, valid) = store_registry(&dir, &[]);
        assert_eq!(valid, want_valid, "{fault:?}: sweep valid count");
        assert_eq!(
            m2.store_quarantined.load(Relaxed) as usize,
            want_quarantined,
            "{fault:?}: sweep quarantine count"
        );
        reg2.insert_sharded("d", ShardedDataset::partition(&base, 2));
        let (warm, hit, warm_tests) =
            reg2.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
        assert!(!hit, "{fault:?}: a fresh process has no memo");
        assert!(warm.is_complete());
        assert_eq!(warm.output.matrix, cold.output.matrix, "{fault:?}: wrong answer");
        assert_eq!(warm.output.scores, cold.output.scores, "{fault:?}: wrong answer");
        assert_eq!(warm.skyline, cold.skyline, "{fault:?}: wrong answer");
        assert_eq!(m2.store_hits.load(Relaxed) as usize, want_valid, "{fault:?}");
        assert!(
            warm_tests < cold_tests,
            "{fault:?}: the surviving shard must be served from disk \
             ({warm_tests} vs {cold_tests})"
        );
        // No artefact quarantined *during* the query: everything bad was
        // already caught by the startup sweep.
        assert_eq!(m2.store_quarantined.load(Relaxed) as usize, want_quarantined);
        // The recompute re-enqueued the lost fold; flushing heals the store.
        reg2.store_snapshot().unwrap();
        drop(reg2);

        // Epoch 3: fully warm — the fault left no permanent damage.
        let (reg3, m3, valid) = store_registry(&dir, &[]);
        assert_eq!(valid, 2, "{fault:?}: store did not self-heal");
        reg3.insert_sharded("d", ShardedDataset::partition(&base, 2));
        let (healed, _, healed_tests) =
            reg3.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
        assert_eq!(healed_tests, 0, "{fault:?}: third epoch must be fully warm");
        assert_eq!(m3.store_hits.load(Relaxed), 2);
        assert_eq!(healed.output.matrix, cold.output.matrix);
        drop(reg3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A fault at *every* write leaves the store empty — and the service
/// still answers correctly from recompute alone, forever.
#[test]
fn a_store_that_never_persists_is_only_a_slow_store() {
    use std::sync::atomic::Ordering::Relaxed;
    let dir = tmp_dir("always-fails");
    let plans: Vec<FaultPlan> =
        (1..=16).map(|w| FaultPlan { at_write: w, fault: DiskFault::Enospc }).collect();
    let (reg, metrics, _) = store_registry(&dir, &plans);
    reg.insert_dataset("d", anticorrelated(1_500, 3, 43));
    let (prefs, key) = parse_prefs(None, 3).unwrap();
    let (a, _, t1) = reg.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
    reg.store_snapshot().unwrap();
    assert!(metrics.store_write_failures.load(Relaxed) >= 1);
    // The memo still serves warm in-process; only durability is lost.
    let (b, hit, _) = reg.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
    assert!(hit);
    assert!(Arc::ptr_eq(&a, &b));
    drop(reg);
    let (reg2, _, valid) = store_registry(&dir, &[]);
    assert_eq!(valid, 0, "nothing ever became durable");
    reg2.insert_dataset("d", anticorrelated(1_500, 3, 43));
    let (c, _, t2) = reg2.fingerprint("d", &prefs, &key, 32, 7, counted()).unwrap();
    assert_eq!(t2, t1, "cold fallback repeats the full computation");
    assert_eq!(c.output.matrix, a.output.matrix);
    drop(reg2);
    let _ = std::fs::remove_dir_all(&dir);
}

fn start_with(cfg: ServerConfig) -> ServerHandle {
    Server::bind(&cfg).expect("bind").spawn().expect("spawn")
}

fn store_cfg(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        store_dir: Some(dir.to_str().unwrap().to_string()),
        ..ServerConfig::default()
    }
}

fn counted_spec(k: usize) -> QuerySpec {
    let mut s = QuerySpec::new("ant", k);
    s.t = 48;
    s.seed = 11;
    s.max_dominance_tests = Some(u64::MAX / 2);
    s
}

/// `SNAPSHOT` flushes, a corrupted artefact is caught by `RESTORE`, and
/// the `STATS` payload carries the three store counters — all over the
/// wire.
#[test]
fn snapshot_and_restore_verbs_work_over_the_wire() {
    let dir = tmp_dir("wire");
    let handle = start_with(store_cfg(&dir));
    handle.registry().insert_dataset("ant", anticorrelated(4_000, 3, 51));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let cold = client.query(&counted_spec(5)).expect("cold query");
    let selected = json_u64_array(&cold, "selected").unwrap();
    let reply = client.snapshot().expect("snapshot");
    assert_eq!(reply, "persisted=1", "one shard fold became durable");

    // Corrupt the artefact at rest; RESTORE must quarantine it.
    let artefact = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "sig2"))
        .expect("one persisted artefact");
    let mut bytes = std::fs::read(&artefact).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&artefact, &bytes).unwrap();
    let reply = client.restore().expect("restore");
    assert_eq!(reply, "artifacts=0 quarantined=1 removed_temps=0");

    // The quarantined artefact is never served: the next cold-cache
    // process would recompute. In *this* process the memo still holds
    // the answer, which must be unchanged.
    let warm = client.query(&counted_spec(5)).expect("query after quarantine");
    assert_eq!(json_u64_array(&warm, "selected").unwrap(), selected);

    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "store_quarantined"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "store_write_failures"), Some(0), "{stats}");
    assert!(json_u64(&stats, "store_hits").is_some(), "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without `--store-dir`, the store verbs are clean `ERR`s and the
/// connection survives them.
#[test]
fn store_verbs_without_a_store_are_polite_errors() {
    let handle = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(handle.addr()).expect("connect");
    let err = client.snapshot().unwrap_err();
    assert!(err.contains("no store"), "{err}");
    let err = client.restore().unwrap_err();
    assert!(err.contains("no store"), "{err}");
    assert!(client.stats().is_ok(), "connection survives store errors");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// The restart contract, end to end over TCP: server A computes and
/// snapshots; server B on the same store directory answers its first
/// query bit-identically *without charging a single dominance test*.
#[test]
fn a_restarted_server_answers_warm_and_identical() {
    let dir = tmp_dir("restart");
    let data = anticorrelated(5_000, 3, 61);

    let a = start_with(store_cfg(&dir));
    a.registry().insert_dataset("ant", data.clone());
    let mut client = Client::connect(a.addr()).expect("connect A");
    let cold = client.query(&counted_spec(6)).expect("cold query");
    let selected = json_u64_array(&cold, "selected").unwrap();
    assert!(json_u64(&cold, "dominance_tests").unwrap() > 0);
    client.snapshot().expect("snapshot");
    client.shutdown().expect("shutdown A");
    a.join().expect("A exits");

    let b = start_with(store_cfg(&dir));
    b.registry().insert_dataset("ant", data);
    let mut client = Client::connect(b.addr()).expect("connect B");
    let warm = client.query(&counted_spec(6)).expect("first post-restart query");
    assert_eq!(
        json_u64_array(&warm, "selected").unwrap(),
        selected,
        "restart changed the answer"
    );
    assert_eq!(
        json_u64(&warm, "dominance_tests"),
        Some(0),
        "the restored fold must make the first query free: {warm}"
    );
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "store_hits").unwrap() >= 1, "{stats}");
    client.shutdown().expect("shutdown B");
    b.join().expect("B exits");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A request line past the configured cap gets one `ERR` and a closed
/// connection — a slow-loris client cannot buffer unbounded bytes.
#[test]
fn oversized_request_lines_are_rejected_and_shed() {
    let handle = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        max_line_bytes: 128,
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    let long = "QUERY ".to_string() + &"x".repeat(4096) + "\n";
    stream.write_all(long.as_bytes()).expect("send oversized line");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).expect("read error reply");
    assert!(
        line.starts_with("ERR request line exceeds 128 bytes"),
        "unexpected reply: {line:?}"
    );
    line.clear();
    let n = reader.read_line(&mut line).expect("read after shed");
    assert_eq!(n, 0, "the connection must be closed after the oversized line");

    // The server itself is fine.
    let mut client = Client::connect(handle.addr()).expect("connect again");
    assert!(client.stats().is_ok());
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}

/// A silent connection is shed by the read timeout instead of pinning a
/// worker forever; the server keeps serving others.
#[test]
fn idle_connections_are_shed_by_the_read_timeout() {
    let handle = start_with(ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        read_timeout_ms: 250,
        ..ServerConfig::default()
    });
    let idle = TcpStream::connect(handle.addr()).expect("connect idle");
    let t0 = Instant::now();
    let mut reader = BufReader::new(idle.try_clone().unwrap());
    let mut line = String::new();
    // The server never writes; the read returns 0 once it drops us.
    let n = reader.read_line(&mut line).expect("read until shed");
    assert_eq!(n, 0, "server must close the idle connection");
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "idle shed took {:?}",
        t0.elapsed()
    );
    drop(idle);

    // With the single worker freed, a real client gets served.
    let mut client = Client::connect_retry(
        handle.addr(),
        20,
        Duration::from_millis(100),
    )
    .expect("connect after shed");
    assert!(client.stats().is_ok());
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
