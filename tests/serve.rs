//! Integration tests of the `skydiver-serve` query service: wire-level
//! determinism against the direct pipeline, fingerprint-cache reuse,
//! budget degradation and clean shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};

use skydiver::data::generators::anticorrelated;
use skydiver::data::io;
use skydiver::serve::protocol::{
    json_bool, json_f64, json_u64, json_u64_array, BatchSpec, Method, QuerySpec,
};
use skydiver::serve::{Client, Server, ServerConfig, ServerHandle};
use skydiver::{Preference, SkyDiver};

const T: usize = 64;
const SEED: u64 = 5;

fn start(threads: usize) -> ServerHandle {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        cache_bytes: 64 << 20,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn")
}

fn spec(k: usize) -> QuerySpec {
    let mut s = QuerySpec::new("ant", k);
    s.t = T;
    s.seed = SEED;
    s
}

fn selected_of(payload: &str) -> Vec<u64> {
    json_u64_array(payload, "selected").expect("selected array")
}

/// Acceptance: with a fixed seed, a server `QUERY` — cold or warm, any
/// worker-pool size, under concurrency — returns the bit-identical
/// selected set that a direct `SkyDiver::run` computes.
#[test]
fn concurrent_queries_match_direct_run_bit_for_bit() {
    let k = 7;
    let direct = SkyDiver::new(k)
        .signature_size(T)
        .hash_seed(SEED)
        .run(&anticorrelated(20_000, 3, 33), &Preference::all_min(3))
        .expect("direct run");
    let expected: Vec<u64> = direct.selected.iter().map(|&i| i as u64).collect();

    for threads in [1, 4] {
        let handle = start(threads);
        handle.registry().insert_dataset("ant", anticorrelated(20_000, 3, 33));
        let addr = handle.addr();

        // 8 concurrent clients, all racing the cold cache.
        let cached_seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cached_seen = &cached_seen;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let payload = client.query(&spec(k)).expect("query");
                    assert_eq!(
                        &selected_of(&payload),
                        expected,
                        "concurrent cold query diverged from the direct run ({threads} threads)"
                    );
                    if json_bool(&payload, "cached") == Some(true) {
                        cached_seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        // Warm: a 9th query must hit the cache and still match.
        let mut client = Client::connect(addr).expect("connect");
        let payload = client.query(&spec(k)).expect("warm query");
        assert_eq!(selected_of(&payload), expected, "warm query diverged");
        assert_eq!(json_bool(&payload, "cached"), Some(true));

        let stats = client.stats().expect("stats");
        let hits = json_u64(&stats, "cache_hits").unwrap();
        let misses = json_u64(&stats, "cache_misses").unwrap();
        assert!(hits >= 1, "warm query must be a cache hit: {stats}");
        assert_eq!(hits + misses, 9, "every query is a hit or a miss: {stats}");
        assert_eq!(json_u64(&stats, "queries"), Some(9));

        client.shutdown().expect("shutdown");
        handle.join().expect("clean server exit");
    }
}

/// Acceptance: a warm-cache `QUERY` skips fingerprinting entirely — it
/// completes undegraded even under a zero dominance-test budget (the
/// selection phase charges none), reports `fingerprint_ms` 0 and bumps
/// the cache-hit counter. The same zero budget on a cold cache degrades.
#[test]
fn warm_cache_query_charges_no_dominance_tests() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(10_000, 3, 44));
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Cold query under a zero dominance-test budget: fingerprinting must
    // trip immediately — degraded, nothing cached.
    let mut starved = spec(5);
    starved.max_dominance_tests = Some(0);
    let payload = client.query(&starved).expect("starved cold query");
    assert_eq!(json_bool(&payload, "degraded"), Some(true), "{payload}");
    assert_eq!(json_bool(&payload, "cached"), Some(false));

    // Populate the cache with an unbudgeted query.
    let payload = client.query(&spec(5)).expect("cold query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    assert!(json_f64(&payload, "fingerprint_ms").unwrap() > 0.0);
    let cold_selected = selected_of(&payload);

    // Warm query under the same zero budget: the cached fingerprint means
    // no dominance test is ever charged, so it must complete undegraded
    // with the identical answer and no fingerprint cost.
    let payload = client.query(&starved).expect("starved warm query");
    assert_eq!(json_bool(&payload, "cached"), Some(true), "{payload}");
    assert_eq!(json_bool(&payload, "degraded"), Some(false), "{payload}");
    assert_eq!(json_f64(&payload, "fingerprint_ms"), Some(0.0));
    assert_eq!(selected_of(&payload), cold_selected);

    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "cache_hits").unwrap() >= 1, "{stats}");
    assert!(json_u64(&stats, "degraded").unwrap() >= 1, "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// The LSH method reuses the same cached fingerprint as MinHash; the
/// exact greedy baseline bypasses the cache entirely.
#[test]
fn lsh_reuses_the_cache_and_greedy_bypasses_it() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(8_000, 3, 55));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let payload = client.query(&spec(4)).expect("mh query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    let skyline = json_u64(&payload, "skyline").unwrap();

    let mut lsh = spec(4);
    lsh.method = Method::Lsh { xi: 0.2, buckets: 16 };
    let payload = client.query(&lsh).expect("lsh query");
    assert_eq!(
        json_bool(&payload, "cached"),
        Some(true),
        "lsh shares the (dataset, prefs, t, seed) fingerprint: {payload}"
    );
    assert_eq!(selected_of(&payload).len(), 4);

    let mut greedy = spec(4);
    greedy.method = Method::Greedy;
    let payload = client.query(&greedy).expect("greedy query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    assert_eq!(json_u64(&payload, "skyline"), Some(skyline));
    let sel = selected_of(&payload);
    assert_eq!(sel.len(), 4);
    let unique: std::collections::HashSet<u64> = sel.iter().copied().collect();
    assert_eq!(unique.len(), 4, "greedy selection must be distinct: {sel:?}");
    // Greedy never populates the signature cache.
    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "cache_misses"), Some(1), "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Error responses: unknown datasets, bad requests and missing files are
/// `ERR` lines, and the connection stays usable afterwards.
#[test]
fn errors_are_reported_and_survivable() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(5_000, 3, 66));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let err = client.query(&spec(4).clone_with_dataset("ghost")).unwrap_err();
    assert!(err.contains("ghost"), "{err}");

    let err = client.exchange("FROBNICATE all the=things").unwrap_err();
    assert!(err.contains("unknown verb"), "{err}");

    let err = client.exchange("QUERY dataset=ant k=nope").unwrap_err();
    assert!(err.contains("k="), "{err}");

    let err = client.load("nope", "/definitely/not/a/file.csv").unwrap_err();
    assert!(err.contains("cannot read"), "{err}");

    // Bad preferences for the dimensionality.
    let mut bad_prefs = spec(4);
    bad_prefs.prefs = Some("min,up,min".into());
    assert!(client.query(&bad_prefs).is_err());

    // The connection is still good.
    let payload = client.query(&spec(4)).expect("query after errors");
    assert_eq!(selected_of(&payload).len(), 4);
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "errors").unwrap() >= 5, "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// The wire `LOAD` path: a CSV on disk, loaded over the protocol, must
/// answer exactly like a direct run over the same file.
#[test]
fn wire_load_matches_direct_run_on_the_same_file() {
    let dir = std::env::temp_dir();
    let csv = dir.join(format!("skydiver-serve-{}.csv", std::process::id()));
    io::write_csv(&anticorrelated(6_000, 3, 77), &csv).expect("write csv");
    let ds = io::read_csv(&csv).expect("read csv back");
    let direct = SkyDiver::new(5)
        .signature_size(T)
        .hash_seed(SEED)
        .run(&ds, &Preference::all_min(3))
        .expect("direct run");
    let expected: Vec<u64> = direct.selected.iter().map(|&i| i as u64).collect();

    let handle = start(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let summary = client.load("ant", csv.to_str().unwrap()).expect("wire load");
    assert!(summary.contains("points=6000"), "{summary}");
    let payload = client.query(&spec(5)).expect("query");
    assert_eq!(selected_of(&payload), expected);

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
    std::fs::remove_file(csv).ok();
}

/// The wire `APPEND` path end-to-end: growing a served dataset by one
/// shard must answer bit-identically to a cold run over the grown data,
/// while charging only the incremental dominance-test bill — the old
/// shard's fold is reused, so a skyline-preserving append of `a` rows
/// against an `m`-point skyline costs exactly `a · m` tests instead of
/// `(n + a) · m`.
#[test]
fn wire_append_reuses_folds_and_answers_exactly() {
    let n = 8_000usize;
    let a = 400usize;
    let base = anticorrelated(n, 3, 88);

    // The appended block: every base point, shifted up by 0.25 in every
    // coordinate. Under all-min preferences each shifted point is
    // dominated by its original, so the skyline cannot change — the old
    // shard must be reused exact-fit.
    let rows: Vec<Vec<f64>> = (0..a)
        .map(|i| base.point(i).iter().map(|&v| v + 0.25).collect())
        .collect();
    let block = skydiver::Dataset::from_rows(3, &rows);
    let dir = std::env::temp_dir();
    let csv = dir.join(format!("skydiver-append-{}.csv", std::process::id()));
    io::write_csv(&block, &csv).expect("write append block");

    let handle = start(2);
    handle.registry().insert_dataset("ant", base.clone());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let cold = client.query(&spec(6)).expect("cold query");
    assert_eq!(selected_of(&cold).len(), 6, "cold query answers");
    let m = json_u64(&cold, "skyline").expect("skyline size");
    let cold_tests = json_u64(&cold, "dominance_tests").expect("dominance_tests");
    // The index-free scan skips the skyline rows themselves, so a cold
    // run costs exactly (n − m)·m dominance tests.
    assert_eq!(cold_tests, (n as u64 - m) * m, "cold run scans every non-skyline row: {cold}");

    let summary = client.append("ant", csv.to_str().unwrap()).expect("wire append");
    assert!(summary.contains("shards=2"), "{summary}");
    assert!(summary.contains("appended=400"), "{summary}");
    assert!(summary.contains("points=8400"), "{summary}");

    // Warm query after the append: same skyline, identical selection,
    // and a dominance-test bill of exactly a·m — the n·m bulk of the old
    // shard is merged from its cached fold.
    let warm = client.query(&spec(6)).expect("warm query");
    assert_eq!(json_u64(&warm, "skyline"), Some(m), "append was dominated: {warm}");
    let warm_selected = selected_of(&warm);
    let warm_tests = json_u64(&warm, "dominance_tests").expect("dominance_tests");
    assert_eq!(
        warm_tests,
        a as u64 * m,
        "warm append path must charge a·m, not (n+a)·m: {warm}"
    );

    // Reference: the grown dataset served cold under another name pays
    // the full (n+a−m)·m bill and must select the very same points the
    // incremental path did.
    let mut grown = base.clone();
    for i in 0..block.len() {
        grown.push(block.point(i));
    }
    handle.registry().insert_dataset("grown", grown);
    let payload = client
        .query(&spec(6).clone_with_dataset("grown"))
        .expect("grown cold query");
    assert_eq!(
        selected_of(&payload),
        warm_selected,
        "incremental fold diverged from the cold recompute"
    );
    let grown_tests = json_u64(&payload, "dominance_tests").expect("dominance_tests");
    assert!(
        warm_tests * 4 < grown_tests,
        "append must be far cheaper than recompute: {warm_tests} vs {grown_tests}"
    );

    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "appends"), Some(1), "{stats}");
    assert!(json_u64(&stats, "shards_reused").unwrap() >= 1, "{stats}");
    assert!(
        stats.contains("\"ant\":2") && stats.contains("\"grown\":1"),
        "STATS must report per-dataset shard counts: {stats}"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
    std::fs::remove_file(csv).ok();
}

/// Re-`LOAD`ing a name replaces the dataset and drops every cached
/// artefact for it: the next query answers from the new data, never from
/// a stale fingerprint.
#[test]
fn wire_load_replaces_the_dataset_and_its_cache() {
    let dir = std::env::temp_dir();
    let csv = dir.join(format!("skydiver-reload-{}.csv", std::process::id()));
    let replacement = anticorrelated(5_000, 3, 202);
    io::write_csv(&replacement, &csv).expect("write replacement");
    let expected: Vec<u64> = SkyDiver::new(4)
        .signature_size(T)
        .hash_seed(SEED)
        .run(&replacement, &Preference::all_min(3))
        .expect("direct run")
        .selected
        .iter()
        .map(|&i| i as u64)
        .collect();

    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(5_000, 3, 101));
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Warm the cache on the original data.
    let payload = client.query(&spec(4)).expect("first query");
    let original_selected = selected_of(&payload);
    let payload = client.query(&spec(4)).expect("warmed query");
    assert_eq!(json_bool(&payload, "cached"), Some(true), "{payload}");

    // Replace under the same name; the warm cache must not leak through.
    let summary = client.load("ant", csv.to_str().unwrap()).expect("reload");
    assert!(summary.contains("points=5000"), "{summary}");
    let payload = client.query(&spec(4)).expect("post-reload query");
    assert_eq!(
        json_bool(&payload, "cached"),
        Some(false),
        "a stale fingerprint survived the reload: {payload}"
    );
    assert_eq!(selected_of(&payload), expected, "answer must come from the new data");
    assert_ne!(
        selected_of(&payload),
        original_selected,
        "distinct seeds should disagree (sanity check on the fixture)"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
    std::fs::remove_file(csv).ok();
}

/// Helper: `QuerySpec` with a different dataset name.
trait CloneWith {
    fn clone_with_dataset(&self, name: &str) -> QuerySpec;
}

impl CloneWith for QuerySpec {
    fn clone_with_dataset(&self, name: &str) -> QuerySpec {
        let mut s = self.clone();
        s.dataset = name.into();
        s
    }
}

/// A reply minus its timing fields: `*_ms` values vary run to run,
/// every other byte must be identical across transports and batching.
fn det_fields(reply: &str) -> String {
    reply
        .split(',')
        .filter(|part| !part.contains("_ms\":"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Splits a `BATCH` payload's `results` array into its per-item JSON
/// objects (flat objects — no nested braces).
fn split_results(payload: &str) -> Vec<String> {
    let open = "\"results\":[";
    let start = payload.find(open).expect("results array") + open.len();
    let inner = &payload[start..payload.rfind(']').expect("array close")];
    inner
        .split("},{")
        .map(|s| {
            let mut obj = s.to_string();
            if !obj.starts_with('{') {
                obj.insert(0, '{');
            }
            if !obj.ends_with('}') {
                obj.push('}');
            }
            obj
        })
        .collect()
}

/// Satellite: a slow-loris client dribbling bytes without ever
/// completing a request is shed by the read deadline — without pinning
/// the single event-loop thread (well-behaved clients are served the
/// whole time) and with the shed visible in `conns_shed`.
#[test]
fn slow_loris_dribbler_is_shed_without_stalling_the_loop() {
    use std::io::{Read, Write};

    let handle = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 1,
        read_timeout_ms: 400,
        ..ServerConfig::default()
    })
    .expect("bind")
    .spawn()
    .expect("spawn");
    handle.registry().insert_dataset("ant", anticorrelated(3_000, 3, 99));
    let addr = handle.addr();

    // The dribbler: a byte of a never-finished request line at a time.
    let mut loris = std::net::TcpStream::connect(addr).expect("loris connect");
    loris
        .set_read_timeout(Some(std::time::Duration::from_millis(100)))
        .expect("loris read timeout");

    let mut served = 0usize;
    let mut shed = false;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        // Well-behaved traffic must flow while the dribbler drips.
        let mut client = Client::connect(addr).expect("connect");
        let payload = client.query(&spec(3)).expect("query while loris drips");
        assert_eq!(selected_of(&payload).len(), 3);
        served += 1;

        if loris.write_all(b"Q").is_err() {
            shed = true;
        } else {
            let mut buf = [0u8; 16];
            match loris.read(&mut buf) {
                Ok(0) => shed = true, // orderly close from the sweep
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => shed = true, // reset also counts as shed
            }
        }
        if shed {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    assert!(shed, "dribbler was never shed by the read deadline");
    assert!(served >= 1, "the loop served others while the loris dripped");

    let mut client = Client::connect(addr).expect("connect after shed");
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "conns_shed").unwrap() >= 1, "{stats}");
    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Tentpole: N pipelined queries — written back-to-back, flushed once —
/// come back in order, each identical (timing fields aside) to a
/// sequential replay of the same lines, including a budget-starved cold
/// query tripping mid-pipeline without derailing the replies behind it.
#[test]
fn pipelined_replies_arrive_in_order_and_match_sequential() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(9_000, 3, 21));
    handle.registry().insert_dataset("cold", anticorrelated(9_000, 3, 22));
    let addr = handle.addr();

    // Warm "ant" so the pipelined run and its sequential replay see the
    // same cache state; "cold" stays cold and is starved mid-pipeline (a
    // degraded resolve is never cached, so both runs trip identically).
    let mut warmup = Client::connect(addr).expect("connect warmup");
    warmup.query(&spec(5)).expect("warm ant");

    let mut lines: Vec<String> = Vec::new();
    let mut expect_k: Vec<Option<usize>> = Vec::new();
    for k in 2..=9 {
        if k == 5 {
            let mut starved = spec(6).clone_with_dataset("cold");
            starved.max_dominance_tests = Some(0);
            lines.push(starved.to_line());
            expect_k.push(None);
        }
        lines.push(spec(k).to_line());
        expect_k.push(Some(k));
    }

    let mut piped_client = Client::connect(addr).expect("connect piped");
    let piped = piped_client.pipeline(&lines).expect("pipeline");
    assert_eq!(piped.len(), lines.len());

    // In order: reply i answers query i — visible in the k progression.
    for (i, reply) in piped.iter().enumerate() {
        match expect_k[i] {
            Some(k) => assert_eq!(
                selected_of(reply).len(),
                k,
                "reply {i} out of order: {reply}"
            ),
            None => assert_eq!(
                json_bool(reply, "degraded"),
                Some(true),
                "the starved query must trip mid-pipeline: {reply}"
            ),
        }
    }

    // Bit-identical to a sequential replay of the very same lines.
    let mut seq_client = Client::connect(addr).expect("connect sequential");
    for (i, line) in lines.iter().enumerate() {
        let seq = seq_client.request(line).expect("sequential request");
        assert_eq!(
            det_fields(&piped[i]),
            det_fields(&seq),
            "reply {i} diverged between pipelined and sequential"
        );
    }

    // The wire-observed pipeline depth made it into the histogram.
    let stats = seq_client.stats().expect("stats");
    assert!(json_u64(&stats, "pipeline_count").unwrap() >= 1, "{stats}");

    seq_client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Tentpole: the `SKYWIRE01` binary framing carries exactly the text
/// protocol's bytes — QUERY replies and pipelined bursts answer
/// field-for-field identically across the two transports, and the
/// negotiation is counted.
#[test]
fn binary_framing_answers_bit_identically_to_text() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(9_000, 3, 31));
    let addr = handle.addr();

    let mut text = Client::connect(addr).expect("text connect");
    text.query(&spec(5)).expect("text cold"); // populate the cache
    let warm_text = text.query(&spec(5)).expect("text warm");

    let mut bin = Client::connect(addr).expect("binary connect");
    assert!(!bin.is_framed());
    bin.hello().expect("hello");
    assert!(bin.is_framed());
    let warm_bin = bin.query(&spec(5)).expect("binary warm");
    assert_eq!(
        det_fields(&warm_text),
        det_fields(&warm_bin),
        "binary reply diverged from text"
    );

    // Pipelined bursts match across transports too.
    let lines: Vec<String> = (2..=6).map(|k| spec(k).to_line()).collect();
    let text_burst = text.pipeline(&lines).expect("text pipeline");
    let bin_burst = bin.pipeline(&lines).expect("binary pipeline");
    for (i, (t, b)) in text_burst.iter().zip(&bin_burst).enumerate() {
        assert_eq!(
            det_fields(t),
            det_fields(b),
            "pipelined reply {i} diverged between transports"
        );
    }

    let stats = text.stats().expect("stats");
    assert!(json_u64(&stats, "hellos").unwrap() >= 1, "{stats}");
    assert!(json_u64(&stats, "bytes_in").unwrap() > 0, "{stats}");
    assert!(json_u64(&stats, "bytes_out").unwrap() > 0, "{stats}");

    text.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Tentpole: one `BATCH` answers exactly like the equivalent `QUERY`
/// sequence — item 0 pays the one fingerprint resolution, the rest ride
/// the shared fingerprint — compared cold-for-cold on two servers over
/// the same dataset.
#[test]
fn batch_matches_the_equivalent_query_sequence() {
    let items = vec![
        (3, Method::MinHash),
        (7, Method::MinHash),
        (
            5,
            Method::Lsh {
                xi: 0.2,
                buckets: 16,
            },
        ),
    ];
    let mut batch = BatchSpec::new("ant", items);
    batch.t = T;
    batch.seed = SEED;

    // Server A runs the batch against a cold cache.
    let ha = start(2);
    ha.registry().insert_dataset("ant", anticorrelated(9_000, 3, 41));
    let mut ca = Client::connect(ha.addr()).expect("connect A");
    let payload = ca.batch(&batch).expect("batch");
    assert_eq!(json_u64(&payload, "batch"), Some(3), "{payload}");
    let results = split_results(&payload);
    assert_eq!(results.len(), 3);

    let stats = ca.stats().expect("stats A");
    assert_eq!(json_u64(&stats, "batches"), Some(1), "{stats}");
    assert_eq!(json_u64(&stats, "batch_items"), Some(3), "{stats}");
    assert_eq!(
        json_u64(&stats, "cache_misses"),
        Some(1),
        "one resolve for the whole batch: {stats}"
    );

    // Server B replays the equivalent QUERYs sequentially, also cold.
    let hb = start(2);
    hb.registry().insert_dataset("ant", anticorrelated(9_000, 3, 41));
    let mut cb = Client::connect(hb.addr()).expect("connect B");
    for (i, q) in batch.queries().iter().enumerate() {
        let seq = cb.query(q).expect("equivalent query");
        assert_eq!(
            det_fields(&results[i]),
            det_fields(&seq),
            "batch item {i} diverged from its equivalent QUERY"
        );
    }

    // BATCH methods are mh|lsh only: greedy has no shared fingerprint.
    let err = ca
        .exchange(&format!("BATCH dataset=ant specs=3:greedy t={T} seed={SEED}"))
        .unwrap_err();
    assert!(err.contains("mh|lsh"), "{err}");

    ca.shutdown().expect("shutdown A");
    ha.join().expect("clean exit A");
    cb.shutdown().expect("shutdown B");
    hb.join().expect("clean exit B");
}

/// Tentpole: budget-free repeats of an identical query are served from
/// the per-dataset selection memo — no selection re-runs — and the
/// reply stays bit-identical (timing fields aside) to the first warm
/// recompute. Budgeted queries bypass the memo and still agree.
#[test]
fn selection_memo_repeats_bit_identically_without_recomputing() {
    let handle = start(2);
    handle
        .registry()
        .insert_dataset("ant", anticorrelated(9_000, 3, 41));
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Cold: computes and populates both memos. Warm: the first reply
    // rendered from the selection memo.
    let cold = client.query(&spec(6)).expect("cold query");
    let warm = client.query(&spec(6)).expect("warm query");
    assert_eq!(
        selected_of(&cold),
        selected_of(&warm),
        "memoised selection changed the answer"
    );
    for _ in 0..3 {
        let again = client.query(&spec(6)).expect("repeat query");
        assert_eq!(det_fields(&warm), det_fields(&again), "repeat diverged");
    }

    // A budgeted variant of the same query must bypass the memo (its
    // budget could trip mid-selection) yet agree on every
    // deterministic field — the budget is generous, so it never trips.
    let mut budgeted = spec(6);
    budgeted.max_dominance_tests = Some(u64::MAX / 2);
    let careful = client.query(&budgeted).expect("budgeted query");
    assert_eq!(det_fields(&warm), det_fields(&careful), "budget changed the answer");

    let stats = client.stats().expect("stats");
    let selection_hits = json_u64(&stats, "selection_hits").expect("selection_hits");
    assert_eq!(
        selection_hits, 4,
        "exactly the four budget-free repeats hit the memo: {stats}"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
