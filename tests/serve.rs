//! Integration tests of the `skydiver-serve` query service: wire-level
//! determinism against the direct pipeline, fingerprint-cache reuse,
//! budget degradation and clean shutdown.

use std::sync::atomic::{AtomicUsize, Ordering};

use skydiver::data::generators::anticorrelated;
use skydiver::data::io;
use skydiver::serve::protocol::{
    json_bool, json_f64, json_u64, json_u64_array, Method, QuerySpec,
};
use skydiver::serve::{Client, Server, ServerConfig, ServerHandle};
use skydiver::{Preference, SkyDiver};

const T: usize = 64;
const SEED: u64 = 5;

fn start(threads: usize) -> ServerHandle {
    Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads,
        cache_bytes: 64 << 20,
    })
    .expect("bind")
    .spawn()
    .expect("spawn")
}

fn spec(k: usize) -> QuerySpec {
    let mut s = QuerySpec::new("ant", k);
    s.t = T;
    s.seed = SEED;
    s
}

fn selected_of(payload: &str) -> Vec<u64> {
    json_u64_array(payload, "selected").expect("selected array")
}

/// Acceptance: with a fixed seed, a server `QUERY` — cold or warm, any
/// worker-pool size, under concurrency — returns the bit-identical
/// selected set that a direct `SkyDiver::run` computes.
#[test]
fn concurrent_queries_match_direct_run_bit_for_bit() {
    let k = 7;
    let direct = SkyDiver::new(k)
        .signature_size(T)
        .hash_seed(SEED)
        .run(&anticorrelated(20_000, 3, 33), &Preference::all_min(3))
        .expect("direct run");
    let expected: Vec<u64> = direct.selected.iter().map(|&i| i as u64).collect();

    for threads in [1, 4] {
        let handle = start(threads);
        handle.registry().insert_dataset("ant", anticorrelated(20_000, 3, 33));
        let addr = handle.addr();

        // 8 concurrent clients, all racing the cold cache.
        let cached_seen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cached_seen = &cached_seen;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let payload = client.query(&spec(k)).expect("query");
                    assert_eq!(
                        &selected_of(&payload),
                        expected,
                        "concurrent cold query diverged from the direct run ({threads} threads)"
                    );
                    if json_bool(&payload, "cached") == Some(true) {
                        cached_seen.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        // Warm: a 9th query must hit the cache and still match.
        let mut client = Client::connect(addr).expect("connect");
        let payload = client.query(&spec(k)).expect("warm query");
        assert_eq!(selected_of(&payload), expected, "warm query diverged");
        assert_eq!(json_bool(&payload, "cached"), Some(true));

        let stats = client.stats().expect("stats");
        let hits = json_u64(&stats, "cache_hits").unwrap();
        let misses = json_u64(&stats, "cache_misses").unwrap();
        assert!(hits >= 1, "warm query must be a cache hit: {stats}");
        assert_eq!(hits + misses, 9, "every query is a hit or a miss: {stats}");
        assert_eq!(json_u64(&stats, "queries"), Some(9));

        client.shutdown().expect("shutdown");
        handle.join().expect("clean server exit");
    }
}

/// Acceptance: a warm-cache `QUERY` skips fingerprinting entirely — it
/// completes undegraded even under a zero dominance-test budget (the
/// selection phase charges none), reports `fingerprint_ms` 0 and bumps
/// the cache-hit counter. The same zero budget on a cold cache degrades.
#[test]
fn warm_cache_query_charges_no_dominance_tests() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(10_000, 3, 44));
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Cold query under a zero dominance-test budget: fingerprinting must
    // trip immediately — degraded, nothing cached.
    let mut starved = spec(5);
    starved.max_dominance_tests = Some(0);
    let payload = client.query(&starved).expect("starved cold query");
    assert_eq!(json_bool(&payload, "degraded"), Some(true), "{payload}");
    assert_eq!(json_bool(&payload, "cached"), Some(false));

    // Populate the cache with an unbudgeted query.
    let payload = client.query(&spec(5)).expect("cold query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    assert!(json_f64(&payload, "fingerprint_ms").unwrap() > 0.0);
    let cold_selected = selected_of(&payload);

    // Warm query under the same zero budget: the cached fingerprint means
    // no dominance test is ever charged, so it must complete undegraded
    // with the identical answer and no fingerprint cost.
    let payload = client.query(&starved).expect("starved warm query");
    assert_eq!(json_bool(&payload, "cached"), Some(true), "{payload}");
    assert_eq!(json_bool(&payload, "degraded"), Some(false), "{payload}");
    assert_eq!(json_f64(&payload, "fingerprint_ms"), Some(0.0));
    assert_eq!(selected_of(&payload), cold_selected);

    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "cache_hits").unwrap() >= 1, "{stats}");
    assert!(json_u64(&stats, "degraded").unwrap() >= 1, "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// The LSH method reuses the same cached fingerprint as MinHash; the
/// exact greedy baseline bypasses the cache entirely.
#[test]
fn lsh_reuses_the_cache_and_greedy_bypasses_it() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(8_000, 3, 55));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let payload = client.query(&spec(4)).expect("mh query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    let skyline = json_u64(&payload, "skyline").unwrap();

    let mut lsh = spec(4);
    lsh.method = Method::Lsh { xi: 0.2, buckets: 16 };
    let payload = client.query(&lsh).expect("lsh query");
    assert_eq!(
        json_bool(&payload, "cached"),
        Some(true),
        "lsh shares the (dataset, prefs, t, seed) fingerprint: {payload}"
    );
    assert_eq!(selected_of(&payload).len(), 4);

    let mut greedy = spec(4);
    greedy.method = Method::Greedy;
    let payload = client.query(&greedy).expect("greedy query");
    assert_eq!(json_bool(&payload, "cached"), Some(false));
    assert_eq!(json_u64(&payload, "skyline"), Some(skyline));
    let sel = selected_of(&payload);
    assert_eq!(sel.len(), 4);
    let unique: std::collections::HashSet<u64> = sel.iter().copied().collect();
    assert_eq!(unique.len(), 4, "greedy selection must be distinct: {sel:?}");
    // Greedy never populates the signature cache.
    let stats = client.stats().expect("stats");
    assert_eq!(json_u64(&stats, "cache_misses"), Some(1), "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// Error responses: unknown datasets, bad requests and missing files are
/// `ERR` lines, and the connection stays usable afterwards.
#[test]
fn errors_are_reported_and_survivable() {
    let handle = start(2);
    handle.registry().insert_dataset("ant", anticorrelated(5_000, 3, 66));
    let mut client = Client::connect(handle.addr()).expect("connect");

    let err = client.query(&spec(4).clone_with_dataset("ghost")).unwrap_err();
    assert!(err.contains("ghost"), "{err}");

    let err = client.exchange("FROBNICATE all the=things").unwrap_err();
    assert!(err.contains("unknown verb"), "{err}");

    let err = client.exchange("QUERY dataset=ant k=nope").unwrap_err();
    assert!(err.contains("k="), "{err}");

    let err = client.load("nope", "/definitely/not/a/file.csv").unwrap_err();
    assert!(err.contains("cannot read"), "{err}");

    // Bad preferences for the dimensionality.
    let mut bad_prefs = spec(4);
    bad_prefs.prefs = Some("min,up,min".into());
    assert!(client.query(&bad_prefs).is_err());

    // The connection is still good.
    let payload = client.query(&spec(4)).expect("query after errors");
    assert_eq!(selected_of(&payload).len(), 4);
    let stats = client.stats().expect("stats");
    assert!(json_u64(&stats, "errors").unwrap() >= 5, "{stats}");

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
}

/// The wire `LOAD` path: a CSV on disk, loaded over the protocol, must
/// answer exactly like a direct run over the same file.
#[test]
fn wire_load_matches_direct_run_on_the_same_file() {
    let dir = std::env::temp_dir();
    let csv = dir.join(format!("skydiver-serve-{}.csv", std::process::id()));
    io::write_csv(&anticorrelated(6_000, 3, 77), &csv).expect("write csv");
    let ds = io::read_csv(&csv).expect("read csv back");
    let direct = SkyDiver::new(5)
        .signature_size(T)
        .hash_seed(SEED)
        .run(&ds, &Preference::all_min(3))
        .expect("direct run");
    let expected: Vec<u64> = direct.selected.iter().map(|&i| i as u64).collect();

    let handle = start(2);
    let mut client = Client::connect(handle.addr()).expect("connect");
    let summary = client.load("ant", csv.to_str().unwrap()).expect("wire load");
    assert!(summary.contains("points=6000"), "{summary}");
    let payload = client.query(&spec(5)).expect("query");
    assert_eq!(selected_of(&payload), expected);

    client.shutdown().expect("shutdown");
    handle.join().expect("clean server exit");
    std::fs::remove_file(csv).ok();
}

/// Helper: `QuerySpec` with a different dataset name.
trait CloneWith {
    fn clone_with_dataset(&self, name: &str) -> QuerySpec;
}

impl CloneWith for QuerySpec {
    fn clone_with_dataset(&self, name: &str) -> QuerySpec {
        let mut s = self.clone();
        s.dataset = name.into();
        s
    }
}
