//! Cross-crate equivalence suite for every parallel path (PR 2).
//!
//! Every parallel kernel in the pipeline — sharded `SigGen-IF`,
//! partitioned `SigGen-IB`, and chunked greedy selection — promises
//! **bit-identical** results to its sequential counterpart for every
//! thread count. These tests exercise that promise end-to-end through
//! the public facade, across adversarial skyline shapes, and verify
//! that run budgets still trip on each parallel path.

use skydiver::core::dispersion::{
    select_diverse, select_diverse_parallel, SeedRule, TieBreak,
};
use skydiver::core::diversity::SignatureDistance;
use skydiver::core::minhash::{
    sig_gen_ib, sig_gen_ib_parallel, sig_gen_if, sig_gen_parallel,
};
use skydiver::core::ExecContext;
use skydiver::data::dominance::MinDominance;
use skydiver::data::generators;
use skydiver::rtree::{BufferPool, RTree};
use skydiver::skyline::naive_skyline;
use skydiver::{Dataset, HashFamily, Preference, RunBudget, SkyDiver, StopReason};

const THREADS: [usize; 5] = [1, 2, 3, 5, 8];

/// Adversarial skyline shapes: a singleton skyline (one point dominates
/// everything), an all-skyline dataset (nothing dominates anything), and
/// the standard correlated/anticorrelated mixes.
fn adversarial_datasets() -> Vec<(&'static str, Dataset)> {
    // Singleton skyline: the origin dominates every other point.
    let mut rows = vec![[0.0f64, 0.0, 0.0]];
    for i in 0..600 {
        let v = 0.2 + (i as f64) * 1e-3;
        rows.push([v, v + 0.1, v + 0.2]);
    }
    let singleton = Dataset::from_rows(3, &rows);

    // Everything on the skyline: points on an antichain diagonal.
    let anti: Vec<[f64; 3]> = (0..400)
        .map(|i| {
            let x = (i as f64) * 1e-3;
            [x, 0.5 - x, 0.4]
        })
        .collect();
    let all_skyline = Dataset::from_rows(3, &anti);

    vec![
        ("singleton-skyline", singleton),
        ("all-skyline", all_skyline),
        ("independent", generators::independent(3000, 3, 1801)),
        ("anticorrelated", generators::anticorrelated(2000, 3, 1802)),
        ("correlated", generators::correlated(3000, 3, 1803)),
    ]
}

#[test]
fn sharded_index_free_is_bit_identical() {
    for (name, ds) in adversarial_datasets() {
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(32, 11);
        let seq = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        for threads in THREADS {
            let par = sig_gen_parallel(&ds, &MinDominance, &sky, &fam, threads);
            assert_eq!(seq.matrix, par.matrix, "{name}, threads = {threads}");
            assert_eq!(seq.scores, par.scores, "{name}, threads = {threads}");
        }
    }
}

#[test]
fn partitioned_index_based_is_bit_identical() {
    for (name, ds) in adversarial_datasets() {
        let sky = naive_skyline(&ds, &MinDominance);
        let pts: Vec<&[f64]> = sky.iter().map(|&s| ds.point(s)).collect();
        let fam = HashFamily::new(32, 12);
        let tree = RTree::bulk_load(&ds, 1024);
        let mut pool = BufferPool::new(1 << 20);
        let (seq, seq_stats) = sig_gen_ib(&tree, &mut pool, &pts, &fam);
        for threads in THREADS {
            let mut pool = BufferPool::new(1 << 20);
            let (par, par_stats) = sig_gen_ib_parallel(&tree, &mut pool, &pts, &fam, threads);
            assert_eq!(seq.matrix, par.matrix, "{name}, threads = {threads}");
            assert_eq!(seq.scores, par.scores, "{name}, threads = {threads}");
            assert_eq!(seq_stats, par_stats, "{name}, threads = {threads}");
        }
    }
}

#[test]
fn parallel_selection_is_bit_identical() {
    for (name, ds) in adversarial_datasets() {
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(64, 13);
        let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let k = 5.min(sky.len());
        if k < 2 {
            continue;
        }
        for seed in [SeedRule::MaxDominance, SeedRule::FarthestPair] {
            for tie in [TieBreak::MaxDominance, TieBreak::FirstIndex] {
                let mut dist = SignatureDistance::new(&out.matrix);
                let seq = select_diverse(&mut dist, &out.scores, k, seed, tie).unwrap();
                for threads in THREADS {
                    let dist = SignatureDistance::new(&out.matrix);
                    let par =
                        select_diverse_parallel(&dist, &out.scores, k, seed, tie, threads).unwrap();
                    assert_eq!(seq, par, "{name}, {seed:?}/{tie:?}, threads = {threads}");
                }
            }
        }
    }
}

#[test]
fn full_pipeline_is_bit_identical_across_thread_counts() {
    let prefs = Preference::all_min(3);
    for (name, ds) in [
        ("independent", generators::independent(4000, 3, 1804)),
        ("anticorrelated", generators::anticorrelated(2500, 3, 1805)),
    ] {
        let cfg = SkyDiver::new(5).signature_size(64).hash_seed(14);
        let seq = cfg.run(&ds, &prefs).unwrap();
        let (seq_ib, _) = cfg.run_index_based(&ds, &prefs).unwrap();
        for threads in THREADS {
            let t_cfg = cfg.clone().threads(threads);
            let par = t_cfg.run(&ds, &prefs).unwrap();
            assert_eq!(seq.selected, par.selected, "{name} run, threads = {threads}");
            assert_eq!(seq.scores, par.scores, "{name} run, threads = {threads}");
            let (par_ib, _) = t_cfg.run_index_based(&ds, &prefs).unwrap();
            assert_eq!(seq_ib.selected, par_ib.selected, "{name} IB, threads = {threads}");
            assert_eq!(seq_ib.scores, par_ib.scores, "{name} IB, threads = {threads}");
            let auto = t_cfg.run_auto(&ds, &prefs).unwrap();
            assert_eq!(seq_ib.selected, auto.selected, "{name} auto, threads = {threads}");
        }
    }
}

#[test]
fn budgets_trip_on_every_parallel_path() {
    let ds = generators::independent(4000, 3, 1806);
    let prefs = Preference::all_min(3);

    // Index-free parallel fingerprinting under a dominance budget.
    let r = SkyDiver::new(4)
        .signature_size(32)
        .threads(4)
        .budget(RunBudget::none().with_max_dominance_tests(500))
        .run(&ds, &prefs)
        .unwrap();
    let int = r.degradation.interrupt.as_ref().expect("IF budget must trip");
    assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));

    // Index-based parallel fingerprinting under the same budget.
    let (r, _) = SkyDiver::new(4)
        .signature_size(32)
        .threads(4)
        .budget(RunBudget::none().with_max_dominance_tests(500))
        .run_index_based(&ds, &prefs)
        .unwrap();
    let int = r.degradation.interrupt.as_ref().expect("IB budget must trip");
    assert!(matches!(int.reason, StopReason::DominanceBudgetExhausted { .. }));

    // Parallel selection under cancellation: the selection is cut to the
    // exact prefix the sequential greedy would have chosen.
    let sky = naive_skyline(&ds, &MinDominance);
    let fam = HashFamily::new(64, 15);
    let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
    let mut dist = SignatureDistance::new(&out.matrix);
    let full = select_diverse(
        &mut dist,
        &out.scores,
        6,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
    )
    .unwrap();
    let token = skydiver::CancelToken::after_polls(3);
    let ctx = ExecContext::new(RunBudget::none().with_cancel_token(token));
    let dist = SignatureDistance::new(&out.matrix);
    let (prefix, int) = skydiver::core::dispersion::select_diverse_parallel_budgeted(
        &dist,
        &out.scores,
        6,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
        4,
        &ctx,
    )
    .unwrap();
    assert!(int.is_some(), "cancellation must interrupt the selection");
    assert!(prefix.len() < 6, "selection was curtailed");
    assert_eq!(prefix[..], full[..prefix.len()], "exact greedy prefix");
}

#[test]
fn budget_tripped_selection_prefix_is_bit_identical_across_threads() {
    // The persistent-pool selection polls once per greedy round for
    // MaxDominance seeds regardless of thread count or partition shape,
    // so a tripped budget must cut every thread count (including
    // partition widths that do not divide m) to the *same* sequential
    // greedy prefix.
    let ds = generators::anticorrelated(1500, 3, 1807);
    let sky = naive_skyline(&ds, &MinDominance);
    let fam = HashFamily::new(64, 16);
    let out = sig_gen_if(&ds, &MinDominance, &sky, &fam);
    let k = 8.min(sky.len());
    assert!(k >= 4, "need enough skyline points to trip mid-selection");
    let mut dist = SignatureDistance::new(&out.matrix);
    let full = select_diverse(
        &mut dist,
        &out.scores,
        k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
    )
    .unwrap();
    for threads in THREADS {
        let token = skydiver::CancelToken::after_polls(4);
        let ctx = ExecContext::new(RunBudget::none().with_cancel_token(token));
        let dist = SignatureDistance::new(&out.matrix);
        let (prefix, int) = skydiver::core::dispersion::select_diverse_parallel_budgeted(
            &dist,
            &out.scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
            threads,
            &ctx,
        )
        .unwrap();
        assert!(int.is_some(), "threads = {threads}: cancellation must trip");
        // Poll cadence: 1 seed check + 1 per relax round → 4 polls
        // admit the seed plus two relax rounds on every thread count.
        assert_eq!(prefix.len(), 3, "threads = {threads}: fixed poll cadence");
        assert_eq!(prefix[..], full[..3], "threads = {threads}: exact prefix");
    }
}
