//! Resilience acceptance tests: budgets stop large runs promptly with
//! partial results, and every degradation branch is reachable and
//! reported.

use std::time::{Duration, Instant};

use skydiver::data::generators;
use skydiver::{
    CancelToken, DegradationEvent, ExecPhase, FaultInjection, Preference, RunBudget, SkyDiver,
    SkyDiverError, StopReason,
};

/// A short deadline over a 100k-point dataset stops promptly and returns
/// a partial result naming the interrupted phase.
#[test]
fn deadline_stops_a_large_run_promptly() {
    let ds = generators::independent(100_000, 3, 42);
    let prefs = Preference::all_min(3);
    let pipeline = SkyDiver::new(6)
        .signature_size(32)
        .hash_seed(7)
        .budget(RunBudget::none().with_deadline(Duration::from_millis(2)));
    let t0 = Instant::now();
    let r = pipeline.run(&ds, &prefs).unwrap();
    let elapsed = t0.elapsed();
    // "Promptly": worst case is one uninterruptible skyline pass plus one
    // budget-check interval — far under the seconds a full run takes.
    assert!(
        elapsed < Duration::from_secs(5),
        "budgeted run took {elapsed:?}"
    );
    let int = r
        .degradation
        .interrupt
        .as_ref()
        .expect("a 2 ms deadline must trip on 100k points");
    assert!(matches!(int.reason, StopReason::DeadlineExceeded { .. }));
    // The report names the phase that was executing.
    assert!(
        matches!(
            int.phase,
            ExecPhase::Skyline | ExecPhase::Fingerprint | ExecPhase::Selection
        ),
        "unexpected phase {:?}",
        int.phase
    );
    assert!(!r.is_complete());
    assert!(r.degradation.summary().contains("deadline exceeded"));
}

/// A run cancelled mid-selection returns exactly the prefix the
/// unbudgeted run selects (same seed). The fuse is calibrated from the
/// reference run's poll count, so the trip point is deterministic.
#[test]
fn cancelled_selection_returns_the_unbudgeted_prefix() {
    let ds = generators::independent(100_000, 3, 42);
    let prefs = Preference::all_min(3);
    let k = 6;
    let build = || SkyDiver::new(k).signature_size(32).hash_seed(7);

    // Reference run with a token that never trips, to learn the total
    // poll count and the full selection.
    let witness = CancelToken::new();
    let full = build()
        .budget(RunBudget::none().with_cancel_token(witness.clone()))
        .run(&ds, &prefs)
        .unwrap();
    assert_eq!(full.selected.len(), k);
    assert!(full.is_complete());
    let total_polls = witness.polls();
    assert!(total_polls > k as u64, "selection rounds each poll once");

    // The final poll of a run is the check before the last greedy round:
    // fusing there cancels mid-selection with k-1 points chosen.
    let r = build()
        .budget(RunBudget::none().with_cancel_token(CancelToken::after_polls(total_polls)))
        .run(&ds, &prefs)
        .unwrap();
    let int = r.degradation.interrupt.as_ref().expect("fuse must trip");
    assert_eq!(int.phase, ExecPhase::Selection);
    assert_eq!(int.reason, StopReason::Cancelled);
    assert_eq!(r.selected.len(), k - 1);
    assert_eq!(
        r.selected,
        full.selected[..k - 1],
        "partial selection must be the exact greedy prefix"
    );
    assert_eq!(r.scores, full.scores, "fingerprints completed identically");
    assert!(r
        .degradation
        .events
        .iter()
        .any(|e| matches!(e, DegradationEvent::SelectionCurtailed { selected, requested }
            if *selected == k - 1 && *requested == k)));
}

/// Buffer-pool read failure → typed error from the index-based path →
/// `run_auto` degrades to index-free and records the fallback.
#[test]
fn page_read_failure_degrades_to_index_free() {
    let ds = generators::independent(20_000, 3, 43);
    let prefs = Preference::all_min(3);
    let pipeline = SkyDiver::new(4)
        .signature_size(32)
        .hash_seed(11)
        .fault_injection(FaultInjection::one_in(2, 99));
    let err = pipeline.run_index_based(&ds, &prefs).unwrap_err();
    assert!(matches!(err, SkyDiverError::IndexReadFailure { .. }));
    let r = pipeline.run_auto(&ds, &prefs).unwrap();
    assert_eq!(r.selected.len(), 4);
    assert!(matches!(
        r.degradation.events.first(),
        Some(DegradationEvent::IndexFreeFallback { .. })
    ));
    // The fallback result matches a run that never saw the index.
    let plain = SkyDiver::new(4)
        .signature_size(32)
        .hash_seed(11)
        .run(&ds, &prefs)
        .unwrap();
    assert_eq!(r.selected, plain.selected);
}

/// No usable LSH banding → error by default, MinHash fallback when
/// opted in — and the report records the substitution.
#[test]
fn impossible_lsh_banding_falls_back_to_minhash_when_opted_in() {
    let ds = generators::anticorrelated(5_000, 3, 44);
    let prefs = Preference::all_min(3);
    let strict = SkyDiver::new(3).signature_size(1).lsh(0.5, 8);
    assert!(matches!(
        strict.run(&ds, &prefs),
        Err(SkyDiverError::NoLshFactorisation { .. })
    ));
    let r = strict
        .clone()
        .lsh_minhash_fallback(true)
        .run(&ds, &prefs)
        .unwrap();
    assert_eq!(r.selected.len(), 3);
    assert!(r
        .degradation
        .events
        .iter()
        .any(|e| matches!(e, DegradationEvent::MinHashFallback { .. })));
    assert!(r.degradation.summary().contains("MinHash"));
}
