//! Shard-equivalence property suite (PR 4).
//!
//! MinHash slot-wise minima and Γ-score sums are associative and
//! commutative, and every shard hashes **global** row ids — so folding a
//! dataset shard-by-shard and merging must be **bit-identical** to the
//! monolithic index-free pass for *every* contiguous partition of the
//! rows: same signature matrix, same Γ-scores, same skyline. These
//! properties drive random partitions (including empty shards) through
//! the public facade, sequential and parallel, cold and cached, with and
//! without a tripped dominance budget.
//!
//! Harness idiom follows `proptests.rs`: a seeded splitmix64 stream over
//! a coarse coordinate grid (`g/7` for `g ∈ 0..8`) to force ties and
//! duplicates, failure messages carrying the case seed.

use skydiver::data::ShardedDataset;
use skydiver::{Dataset, Preference, RunBudget, SkyDiver};

/// Cases per property — partitions are cheap but each case runs the
/// monolithic reference too, so stay a notch under `proptests.rs`.
const CASES: u64 = 48;

/// splitmix64 — the same tiny generator the vendored `rand` shim seeds
/// with; good enough to scatter grid points and cut positions.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A dataset of `1..max_n` points on the coarse grid.
fn grid_dataset(rng: &mut Rng, max_n: u64, dims: usize) -> Dataset {
    let n = rng.range(1, max_n);
    let mut flat = Vec::with_capacity(n as usize * dims);
    for _ in 0..n * dims as u64 {
        flat.push(rng.range(0, 8) as f64 / 7.0);
    }
    Dataset::from_flat(dims, flat)
}

/// Splits `ds` at `cuts - 1` random positions (duplicates allowed, so
/// some shards may be empty) — a strictly harsher partition space than
/// [`ShardedDataset::partition`]'s near-equal split.
fn random_partition(rng: &mut Rng, ds: &Dataset, cuts: usize) -> ShardedDataset {
    let n = ds.len();
    let mut bounds: Vec<usize> = (0..cuts - 1)
        .map(|_| rng.range(0, n as u64 + 1) as usize)
        .collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    let mut sd = ShardedDataset::new(ds.dims());
    for w in bounds.windows(2) {
        let mut shard = Dataset::with_capacity(ds.dims(), w[1] - w[0]);
        for r in w[0]..w[1] {
            shard.push(ds.point(r));
        }
        sd.push_shard(shard);
    }
    sd
}

#[test]
fn random_partitions_fold_bit_identically() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let ds = grid_dataset(&mut rng, 240, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(24).hash_seed(case);
        let reference = pipe.fingerprint(&ds, &prefs).expect("reference fingerprint");

        let shards = rng.range(1, 9) as usize;
        let sd = random_partition(&mut rng, &ds, shards);
        assert_eq!(sd.len(), ds.len(), "case {case}: partition loses rows");

        for threads in [1usize, 3] {
            let run = pipe
                .clone()
                .threads(threads)
                .fingerprint_sharded(&sd, &prefs)
                .expect("sharded fingerprint");
            let fp = &run.fingerprint;
            assert!(fp.is_complete(), "case {case}: unlimited run tripped");
            assert_eq!(fp.skyline, reference.skyline, "case {case}, threads {threads}");
            assert_eq!(
                fp.output.matrix, reference.output.matrix,
                "case {case}, threads {threads}, {shards} shards: matrix diverged"
            );
            assert_eq!(
                fp.output.scores, reference.output.scores,
                "case {case}, threads {threads}, {shards} shards: Γ-scores diverged"
            );
            assert_eq!(run.shards.len(), sd.num_shards(), "case {case}: fold per shard");
        }
    }
}

#[test]
fn cached_shard_folds_change_nothing() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5eed ^ case);
        let ds = grid_dataset(&mut rng, 200, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(16).hash_seed(case);
        let shards = rng.range(1, 6) as usize;
        let sd = random_partition(&mut rng, &ds, shards);

        let cold = pipe.fingerprint_sharded(&sd, &prefs).expect("cold run");
        let cached: Vec<_> = cold.shards.iter().cloned().map(Some).collect();
        let warm = pipe
            .fingerprint_sharded_with(&sd, &prefs, &cached)
            .expect("warm run");

        assert_eq!(warm.reused_shards, sd.num_shards(), "case {case}: exact-fit reuse");
        assert_eq!(warm.scanned_rows, 0, "case {case}: nothing left to scan");
        assert_eq!(warm.fingerprint.skyline, cold.fingerprint.skyline, "case {case}");
        assert_eq!(
            warm.fingerprint.output.matrix, cold.fingerprint.output.matrix,
            "case {case}: cached merge diverged"
        );
        assert_eq!(
            warm.fingerprint.output.scores, cold.fingerprint.output.scores,
            "case {case}: cached Γ-scores diverged"
        );
    }
}

#[test]
fn budget_trips_identically_on_sequential_folds() {
    // Contiguous shards preserve row order, so the *sequential* fold
    // charges the budget in exactly the monolithic order — a trip lands
    // on the same row and the partial artefacts must still match bit
    // for bit. (Parallel folds only promise bit-identity for complete
    // runs; a trip there stops workers at different rows.)
    let mut tripped_cases = 0u32;
    for case in 0..CASES {
        let mut rng = Rng::new(0x7219 ^ case);
        let ds = grid_dataset(&mut rng, 200, 3);
        let prefs = Preference::all_min(3);
        let limit = rng.range(1, (ds.len() as u64 + 2) * (ds.len() as u64 + 2) / 2);
        let budget = RunBudget::none().with_max_dominance_tests(limit);
        let pipe = SkyDiver::new(2)
            .signature_size(24)
            .hash_seed(case)
            .budget(budget);

        let reference = pipe.fingerprint(&ds, &prefs).expect("reference fingerprint");
        let shards = rng.range(2, 9) as usize;
        let sd = random_partition(&mut rng, &ds, shards);
        let run = pipe.fingerprint_sharded(&sd, &prefs).expect("sharded fingerprint");
        let fp = &run.fingerprint;

        assert_eq!(
            fp.is_complete(),
            reference.is_complete(),
            "case {case}: trip decision diverged (limit {limit})"
        );
        assert_eq!(fp.skyline, reference.skyline, "case {case}");
        assert_eq!(
            fp.output.matrix, reference.output.matrix,
            "case {case}: partial matrix diverged (limit {limit})"
        );
        assert_eq!(
            fp.output.scores, reference.output.scores,
            "case {case}: partial Γ-scores diverged (limit {limit})"
        );
        if !fp.is_complete() {
            tripped_cases += 1;
            assert!(
                run.shards.is_empty(),
                "case {case}: a curtailed run must never expose cacheable folds"
            );
        }
    }
    assert!(
        tripped_cases >= 4,
        "budget property is vacuous: only {tripped_cases} tripped cases"
    );
}

#[test]
fn appended_shards_extend_old_folds_exactly() {
    // The APPEND algebra end-to-end: fold a base partition, append a
    // fresh shard, and re-fold reusing the old per-shard artefacts. The
    // result must equal a cold fingerprint of the grown dataset, and
    // only the *new* rows (plus any freshly exposed skyline columns over
    // old rows) may be scanned.
    for case in 0..CASES / 2 {
        let mut rng = Rng::new(0xa44 ^ case);
        let base = grid_dataset(&mut rng, 180, 3);
        let block = grid_dataset(&mut rng, 60, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(16).hash_seed(case);

        let cuts = rng.range(1, 5) as usize;
        let sd = random_partition(&mut rng, &base, cuts);
        let cold = pipe.fingerprint_sharded(&sd, &prefs).expect("base run");

        let mut grown = ShardedDataset::new(3);
        for i in 0..sd.num_shards() {
            grown.push_shard_arc(sd.shard_arc(i).clone());
        }
        grown.push_shard(block.clone());
        let mut cached: Vec<_> = cold.shards.iter().cloned().map(Some).collect();
        cached.push(None);

        let warm = pipe
            .fingerprint_sharded_with(&grown, &prefs, &cached)
            .expect("append run");

        let mut whole = base.clone();
        for i in 0..block.len() {
            whole.push(block.point(i));
        }
        let reference = pipe.fingerprint(&whole, &prefs).expect("grown reference");

        assert_eq!(warm.fingerprint.skyline, reference.skyline, "case {case}");
        assert_eq!(
            warm.fingerprint.output.matrix, reference.output.matrix,
            "case {case}: append merge diverged"
        );
        assert_eq!(
            warm.fingerprint.output.scores, reference.output.scores,
            "case {case}: append Γ-scores diverged"
        );
        assert!(
            warm.scanned_rows <= block.len() + base.len(),
            "case {case}: warm path rescanned more than the data"
        );
        // No new skyline exposure ⇒ the old shards merge without any
        // rescan and only the appended block is touched.
        if warm.fingerprint.skyline == cold.fingerprint.skyline {
            assert_eq!(
                warm.scanned_rows,
                block.len(),
                "case {case}: skyline unchanged yet old rows were rescanned"
            );
        }
    }
}
