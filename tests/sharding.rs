//! Shard-equivalence property suite (PR 4).
//!
//! MinHash slot-wise minima and Γ-score sums are associative and
//! commutative, and every shard hashes **global** row ids — so folding a
//! dataset shard-by-shard and merging must be **bit-identical** to the
//! monolithic index-free pass for *every* contiguous partition of the
//! rows: same signature matrix, same Γ-scores, same skyline. These
//! properties drive random partitions (including empty shards) through
//! the public facade, sequential and parallel, cold and cached, with and
//! without a tripped dominance budget.
//!
//! Harness idiom follows `proptests.rs`: a seeded splitmix64 stream over
//! a coarse coordinate grid (`g/7` for `g ∈ 0..8`) to force ties and
//! duplicates, failure messages carrying the case seed.

use skydiver::data::ShardedDataset;
use skydiver::{Dataset, Preference, RunBudget, SkyDiver};

/// Cases per property — partitions are cheap but each case runs the
/// monolithic reference too, so stay a notch under `proptests.rs`.
const CASES: u64 = 48;

/// splitmix64 — the same tiny generator the vendored `rand` shim seeds
/// with; good enough to scatter grid points and cut positions.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A dataset of `1..max_n` points on the coarse grid.
fn grid_dataset(rng: &mut Rng, max_n: u64, dims: usize) -> Dataset {
    let n = rng.range(1, max_n);
    let mut flat = Vec::with_capacity(n as usize * dims);
    for _ in 0..n * dims as u64 {
        flat.push(rng.range(0, 8) as f64 / 7.0);
    }
    Dataset::from_flat(dims, flat)
}

/// Splits `ds` at `cuts - 1` random positions (duplicates allowed, so
/// some shards may be empty) — a strictly harsher partition space than
/// [`ShardedDataset::partition`]'s near-equal split.
fn random_partition(rng: &mut Rng, ds: &Dataset, cuts: usize) -> ShardedDataset {
    let n = ds.len();
    let mut bounds: Vec<usize> = (0..cuts - 1)
        .map(|_| rng.range(0, n as u64 + 1) as usize)
        .collect();
    bounds.push(0);
    bounds.push(n);
    bounds.sort_unstable();
    let mut sd = ShardedDataset::new(ds.dims());
    for w in bounds.windows(2) {
        let mut shard = Dataset::with_capacity(ds.dims(), w[1] - w[0]);
        for r in w[0]..w[1] {
            shard.push(ds.point(r));
        }
        sd.push_shard(shard);
    }
    sd
}

#[test]
fn random_partitions_fold_bit_identically() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let ds = grid_dataset(&mut rng, 240, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(24).hash_seed(case);
        let reference = pipe
            .fingerprint(&ds, &prefs)
            .expect("reference fingerprint");

        let shards = rng.range(1, 9) as usize;
        let sd = random_partition(&mut rng, &ds, shards);
        assert_eq!(sd.len(), ds.len(), "case {case}: partition loses rows");

        for threads in [1usize, 3] {
            let run = pipe
                .clone()
                .threads(threads)
                .fingerprint_sharded(&sd, &prefs)
                .expect("sharded fingerprint");
            let fp = &run.fingerprint;
            assert!(fp.is_complete(), "case {case}: unlimited run tripped");
            assert_eq!(
                fp.skyline, reference.skyline,
                "case {case}, threads {threads}"
            );
            assert_eq!(
                fp.output.matrix, reference.output.matrix,
                "case {case}, threads {threads}, {shards} shards: matrix diverged"
            );
            assert_eq!(
                fp.output.scores, reference.output.scores,
                "case {case}, threads {threads}, {shards} shards: Γ-scores diverged"
            );
            assert_eq!(
                run.shards.len(),
                sd.num_shards(),
                "case {case}: fold per shard"
            );
        }
    }
}

#[test]
fn cached_shard_folds_change_nothing() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5eed ^ case);
        let ds = grid_dataset(&mut rng, 200, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(16).hash_seed(case);
        let shards = rng.range(1, 6) as usize;
        let sd = random_partition(&mut rng, &ds, shards);

        let cold = pipe.fingerprint_sharded(&sd, &prefs).expect("cold run");
        let cached: Vec<_> = cold.shards.iter().cloned().map(Some).collect();
        let warm = pipe
            .fingerprint_sharded_with(&sd, &prefs, &cached)
            .expect("warm run");

        assert_eq!(
            warm.reused_shards,
            sd.num_shards(),
            "case {case}: exact-fit reuse"
        );
        assert_eq!(warm.scanned_rows, 0, "case {case}: nothing left to scan");
        assert_eq!(
            warm.fingerprint.skyline, cold.fingerprint.skyline,
            "case {case}"
        );
        assert_eq!(
            warm.fingerprint.output.matrix, cold.fingerprint.output.matrix,
            "case {case}: cached merge diverged"
        );
        assert_eq!(
            warm.fingerprint.output.scores, cold.fingerprint.output.scores,
            "case {case}: cached Γ-scores diverged"
        );
    }
}

#[test]
fn budget_trips_identically_on_sequential_folds() {
    // Contiguous shards preserve row order, so the *sequential* fold
    // charges the budget in exactly the monolithic order — a trip lands
    // on the same row and the partial artefacts must still match bit
    // for bit. (Parallel folds only promise bit-identity for complete
    // runs; a trip there stops workers at different rows.)
    let mut tripped_cases = 0u32;
    for case in 0..CASES {
        let mut rng = Rng::new(0x7219 ^ case);
        let ds = grid_dataset(&mut rng, 200, 3);
        let prefs = Preference::all_min(3);
        let limit = rng.range(1, (ds.len() as u64 + 2) * (ds.len() as u64 + 2) / 2);
        let budget = RunBudget::none().with_max_dominance_tests(limit);
        let pipe = SkyDiver::new(2)
            .signature_size(24)
            .hash_seed(case)
            .budget(budget);

        let reference = pipe
            .fingerprint(&ds, &prefs)
            .expect("reference fingerprint");
        let shards = rng.range(2, 9) as usize;
        let sd = random_partition(&mut rng, &ds, shards);
        let run = pipe
            .fingerprint_sharded(&sd, &prefs)
            .expect("sharded fingerprint");
        let fp = &run.fingerprint;

        assert_eq!(
            fp.is_complete(),
            reference.is_complete(),
            "case {case}: trip decision diverged (limit {limit})"
        );
        assert_eq!(fp.skyline, reference.skyline, "case {case}");
        assert_eq!(
            fp.output.matrix, reference.output.matrix,
            "case {case}: partial matrix diverged (limit {limit})"
        );
        assert_eq!(
            fp.output.scores, reference.output.scores,
            "case {case}: partial Γ-scores diverged (limit {limit})"
        );
        if !fp.is_complete() {
            tripped_cases += 1;
            assert!(
                run.shards.is_empty(),
                "case {case}: a curtailed run must never expose cacheable folds"
            );
        }
    }
    assert!(
        tripped_cases >= 4,
        "budget property is vacuous: only {tripped_cases} tripped cases"
    );
}

#[test]
fn appended_shards_extend_old_folds_exactly() {
    // The APPEND algebra end-to-end: fold a base partition, append a
    // fresh shard, and re-fold reusing the old per-shard artefacts. The
    // result must equal a cold fingerprint of the grown dataset, and
    // only the *new* rows (plus any freshly exposed skyline columns over
    // old rows) may be scanned.
    for case in 0..CASES / 2 {
        let mut rng = Rng::new(0xa44 ^ case);
        let base = grid_dataset(&mut rng, 180, 3);
        let block = grid_dataset(&mut rng, 60, 3);
        let prefs = Preference::all_min(3);
        let pipe = SkyDiver::new(2).signature_size(16).hash_seed(case);

        let cuts = rng.range(1, 5) as usize;
        let sd = random_partition(&mut rng, &base, cuts);
        let cold = pipe.fingerprint_sharded(&sd, &prefs).expect("base run");

        let mut grown = ShardedDataset::new(3);
        for i in 0..sd.num_shards() {
            grown.push_shard_arc(sd.shard_arc(i).clone());
        }
        grown.push_shard(block.clone());
        let mut cached: Vec<_> = cold.shards.iter().cloned().map(Some).collect();
        cached.push(None);

        let warm = pipe
            .fingerprint_sharded_with(&grown, &prefs, &cached)
            .expect("append run");

        let mut whole = base.clone();
        for i in 0..block.len() {
            whole.push(block.point(i));
        }
        let reference = pipe.fingerprint(&whole, &prefs).expect("grown reference");

        assert_eq!(warm.fingerprint.skyline, reference.skyline, "case {case}");
        assert_eq!(
            warm.fingerprint.output.matrix, reference.output.matrix,
            "case {case}: append merge diverged"
        );
        assert_eq!(
            warm.fingerprint.output.scores, reference.output.scores,
            "case {case}: append Γ-scores diverged"
        );
        assert!(
            warm.scanned_rows <= block.len() + base.len(),
            "case {case}: warm path rescanned more than the data"
        );
        // No new skyline exposure ⇒ the old shards merge without any
        // rescan and only the appended block is touched.
        if warm.fingerprint.skyline == cold.fingerprint.skyline {
            assert_eq!(
                warm.scanned_rows,
                block.len(),
                "case {case}: skyline unchanged yet old rows were rescanned"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Cross-process cluster determinism (PR 8).
//
// The same merge algebra, but with the shards owned by *separate worker
// processes*: a coordinator fans fingerprint folds out over TCP and
// merges the returned frames. Every answer — cold, warm, appended,
// budget-tripped, after a kill -9 of a replica, after LEAVE + handoff —
// must match the monolithic single-process payload field for field
// (timings excluded).
// ---------------------------------------------------------------------

mod cluster_process {
    use std::process::{Child, Command, Stdio};
    use std::time::Duration;

    use skydiver::data::generators::anticorrelated;
    use skydiver::data::io;
    use skydiver::serve::protocol::{json_bool, json_u64, json_u64_array, QuerySpec};
    use skydiver::serve::{Client, ClusterConfig, Server, ServerConfig, ServerHandle};

    const T: usize = 64;
    const K: usize = 7;

    /// Worker child processes, killed (SIGKILL) on drop so a failing
    /// assertion never leaks servers.
    struct Workers(Vec<(String, Child)>);

    impl Drop for Workers {
        fn drop(&mut self) {
            for (_, child) in &mut self.0 {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }

    impl Workers {
        fn addrs(&self) -> Vec<String> {
            self.0.iter().map(|(a, _)| a.clone()).collect()
        }

        /// SIGKILLs one worker (no drain, no goodbye — the crash case).
        fn kill(&mut self, idx: usize) {
            let (_, child) = &mut self.0[idx];
            let _ = child.kill();
            let _ = child.wait();
        }
    }

    fn free_port() -> u16 {
        std::net::TcpListener::bind("127.0.0.1:0")
            .expect("probe port")
            .local_addr()
            .expect("probe addr")
            .port()
    }

    /// Spawns `n` plain `skydiver serve` processes and waits until each
    /// accepts connections.
    fn spawn_workers(n: usize) -> Workers {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            let addr = format!("127.0.0.1:{}", free_port());
            let child = Command::new(env!("CARGO_BIN_EXE_skydiver"))
                .args(["serve", "--addr", &addr])
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .expect("spawn worker process");
            v.push((addr, child));
        }
        for (addr, _) in &v {
            Client::connect_retry(addr.as_str(), 200, Duration::from_millis(25))
                .expect("worker did not come up");
        }
        Workers(v)
    }

    /// An in-process coordinator over `workers` at replication `r`.
    fn start_coordinator(workers: &[String], r: usize) -> ServerHandle {
        Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            cluster: Some(ClusterConfig {
                workers: workers.to_vec(),
                replication: r,
                shards: 4,
                fanout_timeout_ms: 10_000,
            }),
            ..ServerConfig::default()
        })
        .expect("bind coordinator")
        .spawn()
        .expect("spawn coordinator")
    }

    /// An in-process monolithic reference server.
    fn start_monolithic() -> ServerHandle {
        Server::bind(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            ..ServerConfig::default()
        })
        .expect("bind monolithic")
        .spawn()
        .expect("spawn monolithic")
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("skydiver-cluster-{}-{name}", std::process::id()));
        p
    }

    fn spec(seed: u64) -> QuerySpec {
        let mut s = QuerySpec::new("d", K);
        s.t = T;
        s.seed = seed;
        s
    }

    fn json_str(json: &str, key: &str) -> Option<String> {
        let pat = format!("\"{key}\":\"");
        let start = json.find(&pat)? + pat.len();
        let rest = &json[start..];
        Some(rest[..rest.find('"')?].to_string())
    }

    /// Every payload field that must be bit-identical across process
    /// topologies (everything except the timing fields).
    #[derive(Debug, PartialEq)]
    struct Answer {
        selected: Vec<u64>,
        gamma: Vec<u64>,
        skyline: u64,
        dominance_tests: u64,
        cached: bool,
        degraded: bool,
        status: String,
    }

    fn answer(payload: &str) -> Answer {
        Answer {
            selected: json_u64_array(payload, "selected").expect("selected"),
            gamma: json_u64_array(payload, "gamma").expect("gamma"),
            skyline: json_u64(payload, "skyline").expect("skyline"),
            dominance_tests: json_u64(payload, "dominance_tests").expect("dominance_tests"),
            cached: json_bool(payload, "cached").expect("cached"),
            degraded: json_bool(payload, "degraded").expect("degraded"),
            status: json_str(payload, "status").expect("status"),
        }
    }

    fn query(client: &mut Client, s: &QuerySpec) -> Answer {
        answer(&client.query(s).expect("query"))
    }

    /// Acceptance: for K ∈ {1, 2, 4} worker processes and R ∈ {1, 2},
    /// the coordinator's QUERY payload matches the monolithic server
    /// field for field — cold, warm (memoised), and after an APPEND.
    #[test]
    fn cluster_topologies_answer_bit_identically_to_monolithic() {
        let base_csv = tmp("base.csv");
        let block_csv = tmp("block.csv");
        io::write_csv(&anticorrelated(4_000, 3, 77), &base_csv).expect("write base");
        io::write_csv(&anticorrelated(800, 3, 78), &block_csv).expect("write block");
        let base_path = base_csv.to_str().unwrap().to_string();
        let block_path = block_csv.to_str().unwrap().to_string();

        let mono = start_monolithic();
        let mut mc = Client::connect(mono.addr()).expect("connect monolithic");
        mc.load("d", &base_path).expect("monolithic load");
        let cold = query(&mut mc, &spec(5));
        let warm = query(&mut mc, &spec(5));
        assert!(warm.cached && !cold.cached, "monolithic memo sanity");
        mc.append("d", &block_path).expect("monolithic append");
        let grown = query(&mut mc, &spec(9));

        for (nworkers, r) in [(1usize, 1usize), (2, 1), (2, 2), (4, 1), (4, 2)] {
            let workers = spawn_workers(nworkers);
            let coord = start_coordinator(&workers.addrs(), r);
            let mut cc = Client::connect(coord.addr()).expect("connect coordinator");
            cc.load("d", &base_path).expect("cluster load");
            assert_eq!(
                query(&mut cc, &spec(5)),
                cold,
                "cold answer diverged ({nworkers} workers, R={r})"
            );
            assert_eq!(
                query(&mut cc, &spec(5)),
                warm,
                "warm answer diverged ({nworkers} workers, R={r})"
            );
            cc.append("d", &block_path).expect("cluster append");
            assert_eq!(
                query(&mut cc, &spec(9)),
                grown,
                "post-append answer diverged ({nworkers} workers, R={r})"
            );
            cc.shutdown().expect("coordinator shutdown");
        }

        mc.shutdown().expect("monolithic shutdown");
        std::fs::remove_file(base_csv).ok();
        std::fs::remove_file(block_csv).ok();
    }

    /// A dominance-test budget must trip at the same absolute row in the
    /// cluster as in the monolithic run: identical degraded prefix,
    /// identical status string (`used`/`limit` included).
    #[test]
    fn budget_tripped_cluster_prefix_is_identical() {
        let csv = tmp("budget.csv");
        io::write_csv(&anticorrelated(4_000, 3, 90), &csv).expect("write csv");
        let path = csv.to_str().unwrap().to_string();

        let mono = start_monolithic();
        let mut mc = Client::connect(mono.addr()).expect("connect monolithic");
        mc.load("d", &path).expect("monolithic load");
        let mut s = spec(5);
        s.max_dominance_tests = Some(500);
        let reference = query(&mut mc, &s);
        assert!(
            reference.degraded,
            "budget must actually trip: {reference:?}"
        );

        let workers = spawn_workers(2);
        let coord = start_coordinator(&workers.addrs(), 1);
        let mut cc = Client::connect(coord.addr()).expect("connect coordinator");
        cc.load("d", &path).expect("cluster load");
        assert_eq!(query(&mut cc, &s), reference, "tripped prefix diverged");

        cc.shutdown().expect("coordinator shutdown");
        mc.shutdown().expect("monolithic shutdown");
        std::fs::remove_file(csv).ok();
    }

    /// PR 9: transports and batching are topology-invariant. Against a
    /// coordinator-backed cluster, the `SKYWIRE01` binary client, the
    /// pipelined text client and a `BATCH` all answer field-for-field
    /// identically to the monolithic server's sequential `QUERY`s.
    #[test]
    fn cluster_pipelined_binary_and_batch_match_monolithic() {
        use skydiver::serve::protocol::{BatchSpec, Method};

        fn split_results(payload: &str) -> Vec<String> {
            let open = "\"results\":[";
            let start = payload.find(open).expect("results array") + open.len();
            let inner = &payload[start..payload.rfind(']').expect("array close")];
            inner
                .split("},{")
                .map(|s| {
                    let mut obj = s.to_string();
                    if !obj.starts_with('{') {
                        obj.insert(0, '{');
                    }
                    if !obj.ends_with('}') {
                        obj.push('}');
                    }
                    obj
                })
                .collect()
        }

        let csv = tmp("pr9.csv");
        io::write_csv(&anticorrelated(4_000, 3, 92), &csv).expect("write csv");
        let path = csv.to_str().unwrap().to_string();

        let mono = start_monolithic();
        let mut mc = Client::connect(mono.addr()).expect("connect monolithic");
        mc.load("d", &path).expect("monolithic load");
        let cold5 = query(&mut mc, &spec(5));
        let warm5 = query(&mut mc, &spec(5));
        let cold6 = query(&mut mc, &spec(6));
        let warm6 = query(&mut mc, &spec(6));

        let workers = spawn_workers(2);
        let coord = start_coordinator(&workers.addrs(), 1);

        // Binary transport: HELLO, then cold + warm QUERYs.
        let mut bin = Client::connect(coord.addr()).expect("connect binary");
        bin.hello().expect("hello");
        bin.load("d", &path).expect("cluster load");
        assert_eq!(query(&mut bin, &spec(5)), cold5, "binary cold diverged");
        assert_eq!(query(&mut bin, &spec(5)), warm5, "binary warm diverged");

        // Pipelined text: a warm burst, every reply identical in order.
        let mut piped = Client::connect(coord.addr()).expect("connect piped");
        let lines = vec![spec(5).to_line(), spec(5).to_line(), spec(5).to_line()];
        for (i, reply) in piped.pipeline(&lines).expect("pipeline").iter().enumerate() {
            assert_eq!(answer(reply), warm5, "pipelined reply {i} diverged");
        }

        // BATCH under a fresh seed: item 0 pays the cluster fan-out
        // resolve (== the monolithic cold query), item 1 rides it
        // (== the monolithic warm query).
        let mut batch = BatchSpec::new("d", vec![(K, Method::MinHash), (K, Method::MinHash)]);
        batch.t = T;
        batch.seed = 6;
        let payload = bin.batch(&batch).expect("cluster batch");
        let results = split_results(&payload);
        assert_eq!(results.len(), 2, "{payload}");
        assert_eq!(answer(&results[0]), cold6, "batch item 0 diverged");
        assert_eq!(answer(&results[1]), warm6, "batch item 1 diverged");

        bin.shutdown().expect("coordinator shutdown");
        mc.shutdown().expect("monolithic shutdown");
        std::fs::remove_file(csv).ok();
    }

    /// R=2 survives a kill -9: after one replica dies mid-cluster the
    /// answer is still complete and bit-identical; after `LEAVE` retires
    /// the dead node (handing its shards off) it still is.
    #[test]
    fn killed_replica_and_leave_keep_answers_identical() {
        let csv = tmp("kill.csv");
        io::write_csv(&anticorrelated(4_000, 3, 91), &csv).expect("write csv");
        let path = csv.to_str().unwrap().to_string();

        let mono = start_monolithic();
        let mut mc = Client::connect(mono.addr()).expect("connect monolithic");
        mc.load("d", &path).expect("monolithic load");
        let ref5 = query(&mut mc, &spec(5));
        let ref11 = query(&mut mc, &spec(11));
        let ref13 = query(&mut mc, &spec(13));

        let mut workers = spawn_workers(3);
        let coord = start_coordinator(&workers.addrs(), 2);
        let mut cc = Client::connect(coord.addr()).expect("connect coordinator");
        cc.load("d", &path).expect("cluster load");
        assert_eq!(
            query(&mut cc, &spec(5)),
            ref5,
            "healthy-cluster answer diverged"
        );

        workers.kill(0);
        let after_kill = query(&mut cc, &spec(11));
        assert_eq!(
            after_kill, ref11,
            "answer diverged after kill -9 of a replica"
        );
        assert!(!after_kill.degraded, "R=2 must mask a single dead node");

        let dead = workers.addrs()[0].clone();
        cc.exchange(&format!("LEAVE addr={dead}")).expect("leave");
        assert_eq!(
            query(&mut cc, &spec(13)),
            ref13,
            "answer diverged after LEAVE + handoff"
        );

        cc.shutdown().expect("coordinator shutdown");
        mc.shutdown().expect("monolithic shutdown");
        std::fs::remove_file(csv).ok();
    }

    /// R=1 with a dead owner cannot mask the loss — the query must still
    /// answer (degraded, shard reported unavailable) instead of erroring
    /// or hanging.
    #[test]
    fn dead_owner_without_replica_degrades_gracefully() {
        let csv = tmp("degrade.csv");
        io::write_csv(&anticorrelated(2_000, 3, 92), &csv).expect("write csv");
        let path = csv.to_str().unwrap().to_string();

        let mut workers = spawn_workers(2);
        let coord = start_coordinator(&workers.addrs(), 1);
        let mut cc = Client::connect(coord.addr()).expect("connect coordinator");
        cc.load("d", &path).expect("cluster load");

        workers.kill(0);
        let mut degraded = query(&mut cc, &spec(21));
        if !degraded.degraded {
            // Rendezvous placement can (rarely) put every shard on
            // worker 1 — kill it too so a shard is certainly lost.
            workers.kill(1);
            degraded = query(&mut cc, &spec(22));
        }
        assert!(
            degraded.degraded,
            "lost shard must degrade the answer: {degraded:?}"
        );
        assert!(
            degraded.status.contains("unavailable"),
            "status must name the unreachable shard: {}",
            degraded.status
        );

        cc.shutdown().expect("coordinator shutdown");
        std::fs::remove_file(csv).ok();
    }
}
