//! Integration tests spanning all crates: data generation → indexing →
//! skyline → fingerprinting → selection → exact re-scoring.

use skydiver::core::{
    brute_force_mmdp, coverage_fraction, greedy_max_coverage, min_pairwise, select_diverse,
    ExactJaccardDistance, GammaSets, SeedRule, SignatureDistance, TieBreak,
};
use skydiver::data::dominance::MinDominance;
use skydiver::data::generators::{anticorrelated, correlated, independent};
use skydiver::data::surrogates::{forest_cover, recipes};
use skydiver::rtree::{BufferPool, RTree};
use skydiver::skyline::{bbs, bnl, dc, naive_skyline, sfs};
use skydiver::{Preference, SkyDiver};

#[test]
fn all_skyline_algorithms_agree_across_distributions() {
    for ds in [
        independent(1500, 3, 1),
        anticorrelated(1500, 3, 2),
        correlated(1500, 3, 3),
        forest_cover(1200, 4).project(4),
        recipes(1200, 5).project(4),
    ] {
        let expect = naive_skyline(&ds, &MinDominance);
        assert_eq!(bnl(&ds, &MinDominance), expect);
        assert_eq!(sfs(&ds, &MinDominance), expect);
        assert_eq!(dc(&ds, &MinDominance), expect);
        let tree = RTree::bulk_load(&ds, 2048);
        let mut pool = BufferPool::new(1 << 20);
        assert_eq!(bbs(&tree, &mut pool), expect);
    }
}

#[test]
fn pipeline_selection_is_near_exact_selection() {
    // With a generous signature size, MH selection should achieve a
    // min-distance close to the exact greedy selection's.
    let ds = anticorrelated(5000, 3, 4);
    let prefs = Preference::all_min(3);
    let k = 5;
    let r = SkyDiver::new(k)
        .signature_size(400)
        .hash_seed(9)
        .run(&ds, &prefs)
        .unwrap();

    let gamma = GammaSets::build(&ds, &MinDominance, &r.skyline);
    let scores = gamma.scores();
    let mut exact = ExactJaccardDistance::new(&gamma);
    let exact_sel = select_diverse(
        &mut exact,
        &scores,
        k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
    )
    .unwrap();

    let mh_div = min_pairwise(&mut exact, &r.selected_positions);
    let exact_div = min_pairwise(&mut exact, &exact_sel);
    assert!(
        mh_div >= exact_div - 0.15,
        "MH diversity {mh_div} too far below exact {exact_div}"
    );
}

#[test]
fn greedy_is_within_factor_two_of_optimum_on_real_jaccard() {
    // Small instance so brute force is exact: the 2-approximation must
    // hold on the actual dominated-set Jaccard metric.
    let ds = independent(800, 3, 5);
    let sky = naive_skyline(&ds, &MinDominance);
    let gamma = GammaSets::build(&ds, &MinDominance, &sky);
    let scores = gamma.scores();
    let mut exact = ExactJaccardDistance::new(&gamma);
    for k in [2usize, 3, 4] {
        if k > sky.len() {
            continue;
        }
        let sel = select_diverse(
            &mut exact,
            &scores,
            k,
            SeedRule::MaxDominance,
            TieBreak::MaxDominance,
        )
        .unwrap();
        let got = min_pairwise(&mut exact, &sel);
        let (_, opt) = brute_force_mmdp(&mut exact, k, 1 << 32).unwrap();
        assert!(
            got >= opt / 2.0 - 1e-9,
            "k={k}: greedy {got} < OPT/2 = {}",
            opt / 2.0
        );
    }
}

#[test]
fn table1_shape_dispersion_vs_coverage() {
    // The qualitative claims of Table 1: (i) coverage's pick has low
    // diversity, dispersion's diversity is much higher; (ii) dispersion
    // still achieves decent coverage.
    let ds = independent(20_000, 4, 6);
    let sky = naive_skyline(&ds, &MinDominance);
    assert!(sky.len() > 20, "need a rich skyline, got {}", sky.len());
    let gamma = GammaSets::build(&ds, &MinDominance, &sky);
    let scores = gamma.scores();
    let k = 10;

    let cov_sel = greedy_max_coverage(&gamma, k).unwrap();
    let mut exact = ExactJaccardDistance::new(&gamma);
    let disp_sel = select_diverse(
        &mut exact,
        &scores,
        k,
        SeedRule::MaxDominance,
        TieBreak::MaxDominance,
    )
    .unwrap();

    let cov_div = min_pairwise(&mut exact, &cov_sel);
    let disp_div = min_pairwise(&mut exact, &disp_sel);
    let cov_cov = coverage_fraction(&gamma, &cov_sel);
    let disp_cov = coverage_fraction(&gamma, &disp_sel);

    assert!(disp_div > cov_div, "dispersion {disp_div} !> coverage {cov_div}");
    assert!(cov_cov >= disp_cov, "coverage objective must win its own metric");
    assert!(disp_cov > 0.5, "dispersion coverage still high: {disp_cov}");
}

#[test]
fn lsh_trades_memory_for_accuracy() {
    let ds = anticorrelated(8000, 4, 7);
    let prefs = Preference::all_min(4);
    let base = SkyDiver::new(10).signature_size(100).hash_seed(11);
    let mh = base.clone().run(&ds, &prefs).unwrap();
    let lsh = base.lsh(0.2, 20).run(&ds, &prefs).unwrap();

    assert!(lsh.memory_bytes < mh.memory_bytes);

    // Re-score both in the original space.
    let gamma = GammaSets::build(&ds, &MinDominance, &mh.skyline);
    let mut exact = ExactJaccardDistance::new(&gamma);
    let mh_div = min_pairwise(&mut exact, &mh.selected_positions);
    let lsh_div = min_pairwise(&mut exact, &lsh.selected_positions);
    // Both should find decently diverse sets on anticorrelated data.
    assert!(mh_div > 0.5, "MH diversity {mh_div}");
    assert!(lsh_div > 0.3, "LSH diversity {lsh_div}");
}

#[test]
fn signature_distance_agrees_with_exact_on_average() {
    let ds = independent(3000, 3, 8);
    let prefs = Preference::all_min(3);
    let r = SkyDiver::new(2).signature_size(256).hash_seed(13).run(&ds, &prefs).unwrap();
    let gamma = GammaSets::build(&ds, &MinDominance, &r.skyline);

    // Rebuild signatures through the public pipeline pieces.
    let fam = skydiver::HashFamily::new(256, 13);
    let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &r.skyline, &fam);
    let mut sigd = SignatureDistance::new(&out.matrix);
    let m = r.skyline.len();
    let mut err_sum = 0.0;
    let mut pairs = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            use skydiver::core::DiversityDistance;
            err_sum += (sigd.distance(i, j) - gamma.jaccard_distance(i, j)).abs();
            pairs += 1;
        }
    }
    let mae = err_sum / pairs.max(1) as f64;
    assert!(mae < 0.05, "mean absolute estimation error {mae}");
}

#[test]
fn index_based_and_index_free_pick_identical_skylines_and_scores() {
    for ds in [independent(4000, 4, 9), forest_cover(3000, 10).project(5)] {
        let prefs = Preference::all_min(ds.dims());
        let cfg = SkyDiver::new(5).signature_size(64).hash_seed(17);
        let a = cfg.run(&ds, &prefs).unwrap();
        let (b, _) = cfg.run_index_based(&ds, &prefs).unwrap();
        assert_eq!(a.skyline, b.skyline);
        assert_eq!(a.scores, b.scores);
    }
}
