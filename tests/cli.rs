//! End-to-end tests of the `skydiver` CLI binary.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_skydiver"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("skydiver-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_info_skyline_diversify_round_trip() {
    let csv = tmp("roundtrip.csv");
    let out = bin()
        .args(["generate", "--family", "ant", "--n", "5000", "--d", "3"])
        .args(["--seed", "1", "--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = bin()
        .args(["info", "--input", csv.to_str().unwrap()])
        .output()
        .expect("run info");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("points: 5000"), "{text}");
    assert!(text.contains("dims:   3"), "{text}");

    let out = bin()
        .args(["skyline", "--input", csv.to_str().unwrap(), "--algo", "bnl"])
        .output()
        .expect("run skyline");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    let header = text.lines().next().unwrap();
    assert!(header.starts_with("# skyline:"), "{header}");

    let out = bin()
        .args(["diversify", "--input", csv.to_str().unwrap(), "--k", "3"])
        .output()
        .expect("run diversify");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 4, "header + 3 rows: {text}");
    assert!(text.contains("gamma="));

    std::fs::remove_file(csv).ok();
}

#[test]
fn binary_snapshot_format_accepted() {
    let sky = tmp("snapshot.sky");
    let out = bin()
        .args(["generate", "--family", "ind", "--n", "2000", "--d", "2"])
        .args(["--out", sky.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());
    let out = bin()
        .args(["diversify", "--input", sky.to_str().unwrap(), "--k", "2"])
        .args(["--method", "lsh", "--xi", "0.2", "--buckets", "10"])
        .output()
        .expect("run diversify lsh");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_file(sky).ok();
}

#[test]
fn max_preferences_flip_the_skyline() {
    let csv = tmp("prefs.csv");
    std::fs::write(&csv, "0.1,0.1\n0.9,0.9\n").unwrap();
    let min_out = bin()
        .args(["skyline", "--input", csv.to_str().unwrap()])
        .output()
        .unwrap();
    let max_out = bin()
        .args(["skyline", "--input", csv.to_str().unwrap(), "--prefs", "max,max"])
        .output()
        .unwrap();
    let min_text = String::from_utf8_lossy(&min_out.stdout);
    let max_text = String::from_utf8_lossy(&max_out.stdout);
    assert!(min_text.contains("\n0,"), "min skyline is point 0: {min_text}");
    assert!(max_text.contains("\n1,"), "max skyline is point 1: {max_text}");

    std::fs::remove_file(csv).ok();
}

#[test]
fn fingerprint_then_select_round_trip() {
    let csv = tmp("fpsel.csv");
    let sig = tmp("fpsel.skysig");
    let out = bin()
        .args(["generate", "--family", "ant", "--n", "3000", "--d", "3"])
        .args(["--seed", "4", "--out", csv.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = bin()
        .args(["fingerprint", "--input", csv.to_str().unwrap()])
        .args(["--t", "64", "--out", sig.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("fingerprinted"));

    // Two selections from one bundle — different k and method.
    for extra in [vec!["--k", "3"], vec!["--k", "5", "--method", "lsh"]] {
        let mut cmd = bin();
        cmd.args(["select", "--signatures", sig.to_str().unwrap()]);
        cmd.args(&extra);
        let out = cmd.output().unwrap();
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout);
        let rows = text.lines().count() - 1;
        assert_eq!(rows.to_string(), extra[1], "{text}");
    }

    std::fs::remove_file(csv).ok();
    std::fs::remove_file(sig).ok();
}

#[test]
fn run_subcommand_is_parallel_deterministic() {
    let csv = tmp("run.csv");
    let out = bin()
        .args(["generate", "--family", "ant", "--n", "4000", "--d", "3"])
        .args(["--seed", "7", "--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let run_with = |threads: &str| {
        let out = bin()
            .args(["run", "--input", csv.to_str().unwrap(), "--k", "4"])
            .args(["--t", "64", "--threads", threads])
            .output()
            .expect("run run");
        assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
        let text = String::from_utf8_lossy(&out.stdout).to_string();
        assert_eq!(text.lines().count(), 5, "header + 4 rows: {text}");
        // Strip the header (it reports thread count and timings).
        text.lines().skip(1).map(String::from).collect::<Vec<_>>()
    };
    assert_eq!(run_with("1"), run_with("4"), "parallel run must be bit-identical");

    // A tiny dominance-test budget degrades gracefully, not fatally.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "4"])
        .args(["--max-dominance-tests", "50"])
        .output()
        .expect("run run budgeted");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stderr).contains("degraded run"));

    std::fs::remove_file(csv).ok();
}

#[test]
fn run_format_json_emits_one_json_line() {
    let csv = tmp("runjson.csv");
    let out = bin()
        .args(["generate", "--family", "ant", "--n", "3000", "--d", "3"])
        .args(["--seed", "9", "--out", csv.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(out.status.success());

    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "4"])
        .args(["--t", "64", "--format", "json"])
        .output()
        .expect("run run json");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 1, "one JSON line: {text}");
    for field in ["\"skyline\":", "\"selected\":[", "\"gamma\":[", "\"degraded\":false"] {
        assert!(text.contains(field), "missing {field}: {text}");
    }
    // The JSON selection matches the text-format selection.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "4", "--t", "64"])
        .output()
        .expect("run run text");
    let plain = String::from_utf8_lossy(&out.stdout).to_string();
    let ids: Vec<String> =
        plain.lines().skip(1).map(|l| l.split(',').next().unwrap().to_string()).collect();
    assert!(
        text.contains(&format!("\"selected\":[{}]", ids.join(","))),
        "json {text} vs text ids {ids:?}"
    );

    // Bad --format value is rejected.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "4"])
        .args(["--format", "yaml"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--format"));

    std::fs::remove_file(csv).ok();
}

#[test]
fn unknown_and_malformed_flags_are_rejected() {
    let csv = tmp("strict.csv");
    std::fs::write(&csv, "0.1,0.2\n0.3,0.4\n0.2,0.1\n").unwrap();

    // A misspelled flag must be an error naming the flag, not a silently
    // applied default.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "3", "--theads", "4"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--theads"), "{err}");
    assert!(err.contains("--threads"), "should list the valid flags: {err}");

    // A flag valid for another command is still rejected.
    let out = bin()
        .args(["skyline", "--input", csv.to_str().unwrap(), "--k", "3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--k"));

    // A malformed numeric value errors instead of falling back to the
    // default.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k", "3", "--t", "lots"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("lots"));

    // A value-taking flag at the end of the line needs its value.
    let out = bin()
        .args(["run", "--input", csv.to_str().unwrap(), "--k"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--k"));

    std::fs::remove_file(csv).ok();
}

#[test]
fn helpful_errors() {
    // Unknown command.
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Missing required flag.
    let out = bin().args(["diversify", "--k", "3"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));

    // k too small propagates the library error.
    let csv = tmp("err.csv");
    std::fs::write(&csv, "0.1,0.2\n0.3,0.4\n0.2,0.1\n").unwrap();
    let out = bin()
        .args(["diversify", "--input", csv.to_str().unwrap(), "--k", "1"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("k must be >= 2"));
    std::fs::remove_file(csv).ok();
}
