//! Property-based tests of the framework's core invariants.

use proptest::prelude::*;

use skydiver::core::{min_pairwise, select_diverse, ExactJaccardDistance, GammaSets, SeedRule, TieBreak};
use skydiver::data::dominance::{Dominance, DominanceOrd, MinDominance};
use skydiver::rtree::{BufferPool, RTree};
use skydiver::skyline::{bbs, bnl, dc, naive_skyline, sfs};
use skydiver::{Dataset, HashFamily};

/// Strategy: a small dataset with coordinates on a coarse grid (to force
/// ties, duplicates and boundary cases).
fn dataset(max_n: usize, dims: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        prop::collection::vec(0u8..8, dims),
        1..max_n,
    )
    .prop_map(move |rows| {
        let flat: Vec<f64> = rows.iter().flatten().map(|&v| v as f64 / 7.0).collect();
        Dataset::from_flat(dims, flat)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dominance_is_a_strict_partial_order(ds in dataset(24, 3)) {
        let n = ds.len();
        for i in 0..n {
            // Irreflexive.
            prop_assert_eq!(MinDominance.dom_cmp(ds.point(i), ds.point(i)), Dominance::Equal);
            for j in 0..n {
                // Asymmetric.
                let ij = MinDominance.dom_cmp(ds.point(i), ds.point(j));
                let ji = MinDominance.dom_cmp(ds.point(j), ds.point(i));
                match ij {
                    Dominance::Dominates => prop_assert_eq!(ji, Dominance::DominatedBy),
                    Dominance::DominatedBy => prop_assert_eq!(ji, Dominance::Dominates),
                    Dominance::Equal => prop_assert_eq!(ji, Dominance::Equal),
                    Dominance::Incomparable => prop_assert_eq!(ji, Dominance::Incomparable),
                }
                // Transitive.
                for l in 0..n {
                    if MinDominance.dominates(ds.point(i), ds.point(j))
                        && MinDominance.dominates(ds.point(j), ds.point(l))
                    {
                        prop_assert!(MinDominance.dominates(ds.point(i), ds.point(l)));
                    }
                }
            }
        }
    }

    #[test]
    fn skyline_algorithms_agree(ds in dataset(60, 3), seed in 0u64..100) {
        let expect = naive_skyline(&ds, &MinDominance);
        prop_assert_eq!(bnl(&ds, &MinDominance), expect.clone());
        prop_assert_eq!(sfs(&ds, &MinDominance), expect.clone());
        prop_assert_eq!(dc(&ds, &MinDominance), expect.clone());
        let tree = RTree::bulk_load(&ds, 256);
        let mut pool = BufferPool::new(1 << 16);
        prop_assert_eq!(bbs(&tree, &mut pool), expect.clone());
        // Bounded-memory and external variants are exact too.
        let (stream, _) = skydiver::skyline::streaming_skyline(&ds, &MinDominance, 4, seed);
        prop_assert_eq!(stream, expect.clone());
        let (less, _) = skydiver::skyline::less_skyline(
            &ds,
            skydiver::skyline::ExternalConfig { memory_pages: 3, page_size: 256 },
        );
        prop_assert_eq!(less, expect);
    }

    #[test]
    fn selection_is_invariant_under_monotone_transforms(
        ds in dataset(50, 2),
        k in 2usize..4,
        scale0 in 1u32..1000,
    ) {
        // SkyDiver's measure only sees dominance, so any strictly
        // monotone per-attribute transform leaves the selection
        // unchanged — the property Lp-based techniques lack.
        let sky = naive_skyline(&ds, &MinDominance);
        prop_assume!(sky.len() >= k);
        let mut transformed = Dataset::with_capacity(2, ds.len());
        for p in ds.iter() {
            transformed.push(&[(p[0] * scale0 as f64).exp(), p[1].powi(3)]);
        }
        prop_assert_eq!(&naive_skyline(&transformed, &MinDominance), &sky);
        let g1 = GammaSets::build(&ds, &MinDominance, &sky);
        let g2 = GammaSets::build(&transformed, &MinDominance, &sky);
        let scores = g1.scores();
        prop_assert_eq!(&scores, &g2.scores());
        let mut d1 = ExactJaccardDistance::new(&g1);
        let mut d2 = ExactJaccardDistance::new(&g2);
        let s1 = select_diverse(&mut d1, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance).unwrap();
        let s2 = select_diverse(&mut d2, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance).unwrap();
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn rtree_counts_match_scans(ds in dataset(80, 2), qx in 0u8..8, qy in 0u8..8) {
        let tree = RTree::bulk_load(&ds, 256);
        tree.validate(true).unwrap();
        let mut pool = BufferPool::new(1 << 16);
        let q = [qx as f64 / 7.0, qy as f64 / 7.0];
        let strict = ds.iter().filter(|p| MinDominance.dominates(&q, p)).count() as u64;
        prop_assert_eq!(tree.count_dominated(&mut pool, &q), strict);
        let weak = ds.iter().filter(|p| q[0] <= p[0] && q[1] <= p[1]).count() as u64;
        prop_assert_eq!(tree.count_weak_region(&mut pool, &q), weak);
    }

    #[test]
    fn exact_jaccard_is_a_metric(ds in dataset(40, 3)) {
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let m = g.len();
        for i in 0..m {
            prop_assert_eq!(g.jaccard_distance(i, i), 0.0);
            for j in 0..m {
                let dij = g.jaccard_distance(i, j);
                prop_assert!((0.0..=1.0).contains(&dij));
                prop_assert_eq!(dij, g.jaccard_distance(j, i));
                for l in 0..m {
                    prop_assert!(
                        g.jaccard_distance(i, l) <= dij + g.jaccard_distance(j, l) + 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn estimated_jaccard_is_a_pseudometric(ds in dataset(40, 2), seed in 0u64..1000) {
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, seed);
        let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let m = sky.len();
        let d = |i: usize, j: usize| out.matrix.estimated_distance(i, j);
        for i in 0..m {
            prop_assert_eq!(d(i, i), 0.0);
            for j in 0..m {
                prop_assert_eq!(d(i, j), d(j, i));
                for l in 0..m {
                    // Lemma 3: signature distance obeys the triangle
                    // inequality (agreement counts are submodular).
                    prop_assert!(d(i, l) <= d(i, j) + d(j, l) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn selection_returns_k_distinct_skyline_members(
        ds in dataset(60, 3),
        k in 2usize..6,
    ) {
        let sky = naive_skyline(&ds, &MinDominance);
        prop_assume!(sky.len() >= k);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let scores = g.scores();
        let mut dist = ExactJaccardDistance::new(&g);
        let sel = select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance).unwrap();
        prop_assert_eq!(sel.len(), k);
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), k, "selection must be distinct");
        prop_assert!(sel.iter().all(|&p| p < sky.len()));
        // Seed really is a max-score point.
        let max = *scores.iter().max().unwrap();
        prop_assert_eq!(scores[sel[0]], max);
    }

    #[test]
    fn greedy_never_below_half_optimum(ds in dataset(30, 2), k in 2usize..4) {
        let sky = naive_skyline(&ds, &MinDominance);
        prop_assume!(sky.len() >= k && sky.len() <= 12);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let scores = g.scores();
        let mut dist = ExactJaccardDistance::new(&g);
        let sel = select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance).unwrap();
        let got = min_pairwise(&mut dist, &sel);
        let (_, opt) = skydiver::core::brute_force_mmdp(&mut dist, k, 1 << 32).unwrap();
        prop_assert!(got >= opt / 2.0 - 1e-9, "greedy {} < OPT/2 {}", got, opt / 2.0);
    }

    #[test]
    fn minhash_estimate_within_statistical_bounds(ds in dataset(60, 2)) {
        let sky = naive_skyline(&ds, &MinDominance);
        prop_assume!(sky.len() >= 2);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        // t = 1024 slots → se ≤ 0.016; allow 6σ.
        let fam = HashFamily::new(1024, 99);
        let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let est = out.matrix.estimated_similarity(i, j);
                let exact = g.jaccard_similarity(i, j);
                prop_assert!((est - exact).abs() < 0.1, "est {} exact {}", est, exact);
            }
        }
    }

    #[test]
    fn insert_built_tree_equals_bulk_loaded_semantics(ds in dataset(120, 2)) {
        let bulk = RTree::bulk_load(&ds, 256);
        let mut dynamic = RTree::new(2, 256);
        for (i, p) in ds.iter().enumerate() {
            dynamic.insert(p, i as u32);
        }
        dynamic.validate(true).unwrap();
        bulk.validate(true).unwrap();
        let mut pool = BufferPool::new(1 << 16);
        // Same query answers from both trees.
        for corner in [[0.0, 0.0], [0.3, 0.6], [1.0, 1.0]] {
            prop_assert_eq!(
                bulk.count_dominated(&mut pool, &corner),
                dynamic.count_dominated(&mut pool, &corner)
            );
        }
    }
}
