//! Property-based tests of the framework's core invariants.
//!
//! Hand-rolled harness: each property runs over many datasets drawn from
//! a seeded splitmix64 stream, with coordinates on a coarse grid (values
//! `g/7` for `g ∈ 0..8`) to force ties, duplicates and boundary cases.
//! Failures print the offending case seed, so every run is reproducible.

use skydiver::core::{
    min_pairwise, select_diverse, ExactJaccardDistance, GammaSets, SeedRule, TieBreak,
};
use skydiver::data::dominance::{Dominance, DominanceOrd, MinDominance};
use skydiver::rtree::{BufferPool, RTree};
use skydiver::skyline::{bbs, bnl, dc, naive_skyline, sfs};
use skydiver::{Dataset, HashFamily, Preference, SelectionMethod, SkyDiver, SkyDiverError};

/// Cases per property (proptest used 64 before it was vendored out).
const CASES: u64 = 64;

/// splitmix64 — the same tiny generator the vendored `rand` shim seeds
/// with; good enough to scatter grid points.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }
}

/// A dataset of `1..max_n` points on the coarse grid.
fn grid_dataset(rng: &mut Rng, max_n: u64, dims: usize) -> Dataset {
    let n = rng.range(1, max_n);
    let mut flat = Vec::with_capacity(n as usize * dims);
    for _ in 0..n * dims as u64 {
        flat.push(rng.range(0, 8) as f64 / 7.0);
    }
    Dataset::from_flat(dims, flat)
}

#[test]
fn dominance_is_a_strict_partial_order() {
    for case in 0..CASES {
        let mut rng = Rng::new(case);
        let ds = grid_dataset(&mut rng, 24, 3);
        let n = ds.len();
        for i in 0..n {
            // Irreflexive.
            assert_eq!(
                MinDominance.dom_cmp(ds.point(i), ds.point(i)),
                Dominance::Equal,
                "case {case}"
            );
            for j in 0..n {
                // Asymmetric.
                let ij = MinDominance.dom_cmp(ds.point(i), ds.point(j));
                let ji = MinDominance.dom_cmp(ds.point(j), ds.point(i));
                let expect = match ij {
                    Dominance::Dominates => Dominance::DominatedBy,
                    Dominance::DominatedBy => Dominance::Dominates,
                    Dominance::Equal => Dominance::Equal,
                    Dominance::Incomparable => Dominance::Incomparable,
                };
                assert_eq!(ji, expect, "case {case}");
                // Transitive.
                for l in 0..n {
                    if MinDominance.dominates(ds.point(i), ds.point(j))
                        && MinDominance.dominates(ds.point(j), ds.point(l))
                    {
                        assert!(
                            MinDominance.dominates(ds.point(i), ds.point(l)),
                            "case {case}: transitivity {i}≺{j}≺{l}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn skyline_algorithms_agree() {
    for case in 0..CASES {
        let mut rng = Rng::new(1000 + case);
        let ds = grid_dataset(&mut rng, 60, 3);
        let seed = rng.range(0, 100);
        let expect = naive_skyline(&ds, &MinDominance);
        assert_eq!(bnl(&ds, &MinDominance), expect, "case {case} (bnl)");
        assert_eq!(sfs(&ds, &MinDominance), expect, "case {case} (sfs)");
        assert_eq!(dc(&ds, &MinDominance), expect, "case {case} (dc)");
        let tree = RTree::bulk_load(&ds, 256);
        let mut pool = BufferPool::new(1 << 16);
        assert_eq!(bbs(&tree, &mut pool), expect, "case {case} (bbs)");
        // Bounded-memory and external variants are exact too.
        let (stream, _) = skydiver::skyline::streaming_skyline(&ds, &MinDominance, 4, seed);
        assert_eq!(stream, expect, "case {case} (streaming)");
        let (less, _) = skydiver::skyline::less_skyline(
            &ds,
            skydiver::skyline::ExternalConfig {
                memory_pages: 3,
                page_size: 256,
            },
        );
        assert_eq!(less, expect, "case {case} (less)");
    }
}

#[test]
fn selection_is_invariant_under_monotone_transforms() {
    for case in 0..CASES {
        let mut rng = Rng::new(2000 + case);
        let ds = grid_dataset(&mut rng, 50, 2);
        let k = rng.range(2, 4) as usize;
        let scale0 = rng.range(1, 1000) as f64;
        // SkyDiver's measure only sees dominance, so any strictly
        // monotone per-attribute transform leaves the selection
        // unchanged — the property Lp-based techniques lack.
        let sky = naive_skyline(&ds, &MinDominance);
        if sky.len() < k {
            continue;
        }
        let mut transformed = Dataset::with_capacity(2, ds.len());
        for p in ds.iter() {
            transformed.push(&[(p[0] * scale0).exp(), p[1].powi(3)]);
        }
        assert_eq!(naive_skyline(&transformed, &MinDominance), sky, "case {case}");
        let g1 = GammaSets::build(&ds, &MinDominance, &sky);
        let g2 = GammaSets::build(&transformed, &MinDominance, &sky);
        let scores = g1.scores();
        assert_eq!(scores, g2.scores(), "case {case}");
        let mut d1 = ExactJaccardDistance::new(&g1);
        let mut d2 = ExactJaccardDistance::new(&g2);
        let s1 = select_diverse(&mut d1, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        let s2 = select_diverse(&mut d2, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
            .unwrap();
        assert_eq!(s1, s2, "case {case}");
    }
}

#[test]
fn rtree_counts_match_scans() {
    for case in 0..CASES {
        let mut rng = Rng::new(3000 + case);
        let ds = grid_dataset(&mut rng, 80, 2);
        let q = [
            rng.range(0, 8) as f64 / 7.0,
            rng.range(0, 8) as f64 / 7.0,
        ];
        let tree = RTree::bulk_load(&ds, 256);
        tree.validate(true).unwrap();
        let mut pool = BufferPool::new(1 << 16);
        let strict = ds.iter().filter(|p| MinDominance.dominates(&q, p)).count() as u64;
        assert_eq!(tree.count_dominated(&mut pool, &q), strict, "case {case}");
        let weak = ds.iter().filter(|p| q[0] <= p[0] && q[1] <= p[1]).count() as u64;
        assert_eq!(tree.count_weak_region(&mut pool, &q), weak, "case {case}");
    }
}

#[test]
fn exact_jaccard_is_a_metric() {
    for case in 0..CASES {
        let mut rng = Rng::new(4000 + case);
        let ds = grid_dataset(&mut rng, 40, 3);
        let sky = naive_skyline(&ds, &MinDominance);
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let m = g.len();
        for i in 0..m {
            assert_eq!(g.jaccard_distance(i, i), 0.0, "case {case}");
            for j in 0..m {
                let dij = g.jaccard_distance(i, j);
                assert!((0.0..=1.0).contains(&dij), "case {case}");
                assert_eq!(dij, g.jaccard_distance(j, i), "case {case}");
                for l in 0..m {
                    assert!(
                        g.jaccard_distance(i, l) <= dij + g.jaccard_distance(j, l) + 1e-12,
                        "case {case}: triangle violated at ({i},{j},{l})"
                    );
                }
            }
        }
    }
}

#[test]
fn estimated_jaccard_is_a_pseudometric() {
    for case in 0..CASES {
        let mut rng = Rng::new(5000 + case);
        let ds = grid_dataset(&mut rng, 40, 2);
        let seed = rng.range(0, 1000);
        let sky = naive_skyline(&ds, &MinDominance);
        let fam = HashFamily::new(16, seed);
        let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
        let m = sky.len();
        let d = |i: usize, j: usize| out.matrix.estimated_distance(i, j);
        for i in 0..m {
            assert_eq!(d(i, i), 0.0, "case {case}");
            for j in 0..m {
                assert_eq!(d(i, j), d(j, i), "case {case}");
                for l in 0..m {
                    // Lemma 3: signature distance obeys the triangle
                    // inequality (agreement counts are submodular).
                    assert!(
                        d(i, l) <= d(i, j) + d(j, l) + 1e-12,
                        "case {case}: triangle violated at ({i},{j},{l})"
                    );
                }
            }
        }
    }
}

#[test]
fn selection_returns_k_distinct_skyline_members() {
    for case in 0..CASES {
        let mut rng = Rng::new(6000 + case);
        let ds = grid_dataset(&mut rng, 60, 3);
        let k = rng.range(2, 6) as usize;
        let sky = naive_skyline(&ds, &MinDominance);
        if sky.len() < k {
            continue;
        }
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let scores = g.scores();
        let mut dist = ExactJaccardDistance::new(&g);
        let sel =
            select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap();
        assert_eq!(sel.len(), k, "case {case}");
        let mut sorted = sel.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "case {case}: selection must be distinct");
        assert!(sel.iter().all(|&p| p < sky.len()), "case {case}");
        // Seed really is a max-score point.
        let max = *scores.iter().max().unwrap();
        assert_eq!(scores[sel[0]], max, "case {case}");
    }
}

#[test]
fn greedy_never_below_half_optimum() {
    for case in 0..CASES {
        let mut rng = Rng::new(7000 + case);
        let ds = grid_dataset(&mut rng, 30, 2);
        let k = rng.range(2, 4) as usize;
        let sky = naive_skyline(&ds, &MinDominance);
        if sky.len() < k || sky.len() > 12 {
            continue;
        }
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        let scores = g.scores();
        let mut dist = ExactJaccardDistance::new(&g);
        let sel =
            select_diverse(&mut dist, &scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
                .unwrap();
        let got = min_pairwise(&mut dist, &sel);
        let (_, opt) = skydiver::core::brute_force_mmdp(&mut dist, k, 1 << 32).unwrap();
        assert!(
            got >= opt / 2.0 - 1e-9,
            "case {case}: greedy {got} < OPT/2 {}",
            opt / 2.0
        );
    }
}

#[test]
fn minhash_estimate_within_statistical_bounds() {
    for case in 0..CASES {
        let mut rng = Rng::new(8000 + case);
        let ds = grid_dataset(&mut rng, 60, 2);
        let sky = naive_skyline(&ds, &MinDominance);
        if sky.len() < 2 {
            continue;
        }
        let g = GammaSets::build(&ds, &MinDominance, &sky);
        // t = 1024 slots → se ≤ 0.016; allow 6σ.
        let fam = HashFamily::new(1024, 99);
        let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
        for i in 0..sky.len() {
            for j in (i + 1)..sky.len() {
                let est = out.matrix.estimated_similarity(i, j);
                let exact = g.jaccard_similarity(i, j);
                assert!(
                    (est - exact).abs() < 0.1,
                    "case {case}: est {est} exact {exact}"
                );
            }
        }
    }
}

#[test]
fn insert_built_tree_equals_bulk_loaded_semantics() {
    for case in 0..CASES {
        let mut rng = Rng::new(9000 + case);
        let ds = grid_dataset(&mut rng, 120, 2);
        let bulk = RTree::bulk_load(&ds, 256);
        let mut dynamic = RTree::new(2, 256);
        for (i, p) in ds.iter().enumerate() {
            dynamic.insert(p, i as u32);
        }
        dynamic.validate(true).unwrap();
        bulk.validate(true).unwrap();
        let mut pool = BufferPool::new(1 << 16);
        // Same query answers from both trees.
        for corner in [[0.0, 0.0], [0.3, 0.6], [1.0, 1.0]] {
            assert_eq!(
                bulk.count_dominated(&mut pool, &corner),
                dynamic.count_dominated(&mut pool, &corner),
                "case {case}"
            );
        }
    }
}

/// The full pipeline never panics from the public builder API: every
/// configuration either succeeds or returns a typed error — on arbitrary
/// finite grid datasets (rich in duplicates), all-identical datasets,
/// every [`SelectionMethod`], and adversarial LSH parameters.
#[test]
fn pipeline_never_panics_on_finite_inputs() {
    for case in 0..CASES {
        let mut rng = Rng::new(10_000 + case);
        let dims = rng.range(1, 4) as usize;
        let ds = if case % 8 == 7 {
            // All-identical points: skyline of size 1, zero distances.
            let n = rng.range(1, 30) as usize;
            let row: Vec<f64> = (0..dims).map(|_| rng.range(0, 8) as f64 / 7.0).collect();
            let mut d = Dataset::with_capacity(dims, n);
            for _ in 0..n {
                d.push(&row);
            }
            d
        } else {
            grid_dataset(&mut rng, 80, dims)
        };
        let k = rng.range(1, 8) as usize;
        let t = rng.range(0, 40) as usize; // 0 is adversarial
        let methods = [
            SelectionMethod::MinHash,
            // Adversarial LSH: thresholds outside (0,1), NaN, huge and
            // zero bucket counts.
            SelectionMethod::Lsh { threshold: 0.2, buckets: 16 },
            SelectionMethod::Lsh { threshold: -1.0, buckets: 4 },
            SelectionMethod::Lsh { threshold: 2.0, buckets: 0 },
            SelectionMethod::Lsh { threshold: f64::NAN, buckets: 1 << 20 },
            SelectionMethod::Lsh { threshold: 0.99, buckets: 1 },
        ];
        let prefs = Preference::all_min(dims);
        for method in methods {
            let mut p = SkyDiver::new(k).signature_size(t).hash_seed(case);
            p = match method {
                SelectionMethod::MinHash => p.minhash(),
                SelectionMethod::Lsh { threshold, buckets } => p.lsh(threshold, buckets),
            };
            // Ok or typed error — any panic fails the test harness.
            match p.run(&ds, &prefs) {
                Ok(r) => {
                    assert!(r.selected.len() <= k, "case {case}");
                    assert!(!r.skyline.is_empty(), "case {case}");
                }
                Err(e) => {
                    // The error renders (Display is total).
                    let _ = e.to_string();
                }
            }
            match p.run_index_based(&ds, &prefs) {
                Ok((r, _)) => assert!(r.selected.len() <= k, "case {case}"),
                Err(e) => {
                    let _ = e.to_string();
                }
            }
        }
    }
}

/// Regression: non-finite coordinates are rejected with a typed error
/// naming the offending row and dimension, never a panic or a silent
/// mis-ordering inside `dom_cmp`.
#[test]
fn non_finite_inputs_are_rejected_with_typed_errors() {
    for (bad, name) in [
        (f64::NAN, "NaN"),
        (f64::INFINITY, "+inf"),
        (f64::NEG_INFINITY, "-inf"),
    ] {
        let ds = Dataset::from_rows(2, &[[0.1, 0.2], [0.3, bad], [0.5, 0.6]]);
        let err = SkyDiver::new(2)
            .signature_size(8)
            .run(&ds, &Preference::all_min(2))
            .unwrap_err();
        match err {
            SkyDiverError::NonFiniteCoordinate { row, dim } => {
                assert_eq!((row, dim), (1, 1), "{name}: wrong location");
            }
            other => panic!("{name}: expected NonFiniteCoordinate, got {other:?}"),
        }
    }
}
