//! Integration tests for the extension modules: persistence, dynamic
//! maintenance, cross-set diversification, generic categorical
//! pipeline, streaming skyline + theory bounds — exercised together,
//! across crates.

use skydiver::core::dynamic::from_batch;
use skydiver::core::minhash::{persist, theory};
use skydiver::core::{
    cross_gamma_sets, diversify_cross, diversify_generic, min_pairwise, select_diverse,
    ExactJaccardDistance, GammaSets, SeedRule, SignatureDistance, TieBreak,
};
use skydiver::data::dominance::MinDominance;
use skydiver::data::generators::{anticorrelated, independent};
use skydiver::skyline::{naive_skyline, streaming_skyline, top_k_dominating_scan};
use skydiver::HashFamily;

#[test]
fn persisted_fingerprints_reproduce_the_same_selection() {
    let ds = anticorrelated(4000, 3, 300);
    let sky = naive_skyline(&ds, &MinDominance);
    let fam = HashFamily::new(100, 301);
    let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);

    let mut path = std::env::temp_dir();
    path.push(format!("skydiver-ext-{}.sig", std::process::id()));
    persist::write_signatures(&out, &path).unwrap();
    let back = persist::read_signatures(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let k = 5.min(sky.len());
    let mut d1 = SignatureDistance::new(&out.matrix);
    let mut d2 = SignatureDistance::new(&back.matrix);
    let s1 = select_diverse(&mut d1, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .unwrap();
    let s2 = select_diverse(&mut d2, &back.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .unwrap();
    assert_eq!(s1, s2, "selection from disk must match in-memory");
}

#[test]
fn dynamic_from_batch_matches_reasonable_quality() {
    let ds = anticorrelated(3000, 3, 302);
    let sky = naive_skyline(&ds, &MinDominance);
    let fam = HashFamily::new(64, 303);
    let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
    let k = 4.min(sky.len());

    let dynamic = from_batch(&out.matrix, &out.scores, k);
    assert_eq!(dynamic.current().len(), k);

    let mut dist = SignatureDistance::new(&out.matrix);
    let batch = select_diverse(&mut dist, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .unwrap();
    let batch_div = min_pairwise(&mut dist, &batch);
    assert!(dynamic.min_diversity() >= 0.5 * batch_div);
}

#[test]
fn cross_set_agrees_with_graph_semantics() {
    // Diversifying the skyline of D against D itself must equal the
    // standard pipeline's Γ sets.
    let ds = independent(1500, 3, 304);
    let sky = naive_skyline(&ds, &MinDominance);
    let candidates = skydiver::Dataset::from_rows(
        3,
        &sky.iter().map(|&s| {
            let p = ds.point(s);
            [p[0], p[1], p[2]]
        }).collect::<Vec<_>>(),
    );
    let cross = cross_gamma_sets(&candidates, &ds, &MinDominance);
    let direct = GammaSets::build(&ds, &MinDominance, &sky);
    assert_eq!(cross.len(), direct.len());
    for j in 0..cross.len() {
        // Candidate j is a *copy* of skyline point sky[j]; the copy is
        // not in `ds`, so it dominates sky[j]'s Γ set exactly (the copy
        // does not dominate the original — equal points don't dominate).
        assert_eq!(cross.score(j), direct.score(j));
    }
    let sel = diversify_cross(&candidates, &ds, &MinDominance, 3, 128, 305).unwrap();
    assert_eq!(sel.len(), 3);
}

#[test]
fn generic_pipeline_handles_numeric_rows_like_the_dataset_one() {
    let ds = anticorrelated(1200, 2, 306);
    let rows: Vec<Vec<f64>> = ds.iter().map(|p| p.to_vec()).collect();
    let (sky_g, sel_g) = diversify_generic(&rows, &MinDominance, 3, 64, 307).unwrap();
    assert_eq!(sky_g, naive_skyline(&ds, &MinDominance));
    assert_eq!(sel_g.len(), 3);
    for &s in &sel_g {
        assert!(sky_g.contains(&s));
    }
}

#[test]
fn streaming_skyline_feeds_the_pipeline() {
    // End-to-end with the bounded-memory skyline instead of SFS.
    let ds = independent(2500, 3, 308);
    let (sky, stats) = streaming_skyline(&ds, &MinDominance, 32, 309);
    assert_eq!(sky, naive_skyline(&ds, &MinDominance));
    assert!(stats.peak_candidates <= 32);
    let fam = HashFamily::new(64, 310);
    let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
    let k = 3.min(sky.len());
    let mut dist = SignatureDistance::new(&out.matrix);
    let sel = select_diverse(&mut dist, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .unwrap();
    assert_eq!(sel.len(), k);
}

#[test]
fn theory_bound_holds_empirically() {
    // Run the greedy on signatures sized by the (ε, β, δ) rule and
    // verify Corollary 1's guarantee against the true optimum on a
    // small instance where brute force is exact.
    let ds = independent(700, 3, 311);
    let sky = naive_skyline(&ds, &MinDominance);
    let gamma = GammaSets::build(&ds, &MinDominance, &sky);
    let mut exact = ExactJaccardDistance::new(&gamma);
    let k = 3.min(sky.len());
    let (_, opt) = skydiver::core::brute_force_mmdp(&mut exact, k, 1 << 34).unwrap();

    let eps = 0.25;
    let t = theory::signature_size(eps, 0.5, 0.05, 1.0);
    let fam = HashFamily::new(t, 312);
    let out = skydiver::core::sig_gen_if(&ds, &MinDominance, &sky, &fam);
    let mut sig = SignatureDistance::new(&out.matrix);
    let sel = select_diverse(&mut sig, &out.scores, k, SeedRule::MaxDominance, TieBreak::MaxDominance)
        .unwrap();
    let achieved = min_pairwise(&mut exact, &sel);
    let bound = theory::corollary1_bound(opt, eps);
    assert!(
        achieved >= bound - 1e-9,
        "achieved {achieved} below Corollary 1 bound {bound} (OPT {opt}, t {t})"
    );
}

#[test]
fn top_k_dominating_seeds_match_selection_seeds() {
    // The selection's seed (max domination score) is exactly the top-1
    // dominating *skyline* point.
    let ds = independent(1000, 3, 313);
    let sky = naive_skyline(&ds, &MinDominance);
    let gamma = GammaSets::build(&ds, &MinDominance, &sky);
    let scores = gamma.scores();
    let top = top_k_dominating_scan(&ds, &MinDominance, 1)[0];
    let best_pos = (0..sky.len()).max_by_key(|&j| scores[j]).unwrap();
    // The global top dominator is always a skyline point (any dominator
    // of it would have a strictly larger dominated set).
    assert_eq!(sky[best_pos], top.0);
    assert_eq!(scores[best_pos], top.1);
}
